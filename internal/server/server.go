package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"context"

	"rcmp/internal/experiments"
	"rcmp/internal/failure"
	"rcmp/internal/runner"
)

// Config sizes the serving mechanisms. The zero value is usable: every
// field falls back to the default named on it.
type Config struct {
	// Workers is the simulation pool size (default GOMAXPROCS).
	Workers int
	// MaxQueuedJobs bounds the global backlog of admitted-but-unstarted
	// jobs; submissions beyond it get 429 (default 4096).
	MaxQueuedJobs int
	// MaxClientBacklog bounds one client's queued+running jobs — the
	// fairness cap that keeps a single client from filling the whole
	// queue (default 1024).
	MaxClientBacklog int
	// MaxJobsPerRequest bounds one sweep's grid size; larger requests get
	// 413 (default 1024).
	MaxJobsPerRequest int
	// CacheEntries bounds the result cache (default 8192).
	CacheEntries int
	// RequestTimeout bounds how long one sweep request may wait for its
	// jobs (default 120s); requests can ask for less via timeout_sec but
	// never more.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = 4096
	}
	if c.MaxClientBacklog <= 0 {
		c.MaxClientBacklog = 1024
	}
	if c.MaxJobsPerRequest <= 0 {
		c.MaxJobsPerRequest = 1024
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 8192
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	return c
}

// Server is the sweep service. Create with New, mount Handler on an
// http.Server, stop with Shutdown.
type Server struct {
	cfg      Config
	cache    *resultCache
	sched    *scheduler
	mux      *http.ServeMux
	draining atomic.Bool
	// admitMu serializes the acquire-entries-then-submit phase of sweep
	// requests. It makes admission atomic with respect to cache interest:
	// if a request is rejected and rolls its owned entries back, no other
	// request can have parked on them in between, so a rejected sweep
	// never strands waiters on jobs nobody scheduled.
	admitMu chMutex
}

// chMutex is a channel-based mutex, acquirable under a context so a
// canceled request cannot queue on admission forever.
type chMutex chan struct{}

func (m chMutex) lock(ctx context.Context) error {
	select {
	case m <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (m chMutex) unlock() { <-m }

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   newResultCache(cfg.CacheEntries),
		admitMu: make(chMutex, 1),
	}
	s.sched = newScheduler(s.cache, cfg.Workers, cfg.MaxQueuedJobs, cfg.MaxClientBacklog)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new sweeps are refused with 503, every
// admitted job runs to completion, then the worker pool exits. If ctx
// expires first, still-queued jobs are failed and workers stop after
// their current job. Callers should shut the http.Server down afterwards
// so streaming responses finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.sched.shutdown(ctx)
}

// Stats is the /v1/stats payload.
type Stats struct {
	Cache        cacheStats `json:"cache"`
	QueuedJobs   int        `json:"queued_jobs"`
	RunningJobs  int        `json:"running_jobs"`
	ExecutedJobs int64      `json:"executed_jobs"`
	Workers      int        `json:"workers"`
	Draining     bool       `json:"draining"`
}

func (s *Server) statsNow() Stats {
	q, r := s.sched.depth()
	return Stats{
		Cache:        s.cache.stats(),
		QueuedJobs:   q,
		RunningJobs:  r,
		ExecutedJobs: s.sched.executedJobs(),
		Workers:      s.cfg.Workers,
		Draining:     s.draining.Load(),
	}
}

// SweepRequest is the /v1/sweep body: the same sweep-grid dimensions as
// the rcmpsim CLI (-fig/-run → specs, -quick → scale, -seeds, -failure-at,
// -schedule, -nodes). Empty dimensions fall back exactly like
// runner.Grid: per-spec default scale/seed, each figure's own failure
// position and cluster shape.
type SweepRequest struct {
	// Specs lists registry keys ("8b", "trace-replay", ...) or "all".
	Specs []string `json:"specs"`
	// Scale is "paper", "quick" or "smoke" ("" = per-spec default).
	Scale string `json:"scale,omitempty"`
	// Seeds, FailureAts, Schedules, Nodes, Tenants and Speculation are
	// sweep dimensions; schedules use the CLI pulse syntax ("2@15,4@5x2",
	// "stic:1"). Tenants>1 applies to multi-tenant specs only; other specs
	// record it as a per-job error.
	Seeds       []int64  `json:"seeds,omitempty"`
	FailureAts  []int    `json:"failure_ats,omitempty"`
	Schedules   []string `json:"schedules,omitempty"`
	Nodes       []int    `json:"nodes,omitempty"`
	Tenants     []int    `json:"tenants,omitempty"`
	Speculation []bool   `json:"speculation,omitempty"`
	// Engines selects execution engines per grid point: "des" and/or
	// "analytic" (empty = DES only). The analytic engine accepts nodes up
	// to 1048576 where the DES caps at 16384.
	Engines []string `json:"engines,omitempty"`
	// SeedSet expands every seed into that many consecutive seeds and adds
	// mean/CI95 aggregates to the final report (see runner.Grid.SeedSet).
	SeedSet int `json:"seed_set,omitempty"`
	// Stream selects NDJSON streaming (default true). With false the
	// response is one deterministic runner.Report JSON document.
	Stream *bool `json:"stream,omitempty"`
	// TimeoutSec caps this request's wait below the server default.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// buildJobs lowers a SweepRequest onto the runner grid.
func buildJobs(req SweepRequest) ([]runner.Job, error) {
	if len(req.Specs) == 0 {
		return nil, fmt.Errorf("specs is required (registry keys or \"all\")")
	}
	var specs []experiments.Spec
	for _, key := range req.Specs {
		k := strings.ToLower(strings.TrimSpace(key))
		if k == "all" {
			specs = experiments.Registry()
			break
		}
		sp, ok := experiments.Lookup(strings.TrimPrefix(k, "fig"))
		if !ok {
			return nil, fmt.Errorf("unknown spec %q (see /v1/experiments)", key)
		}
		specs = append(specs, sp)
	}
	var scales []experiments.Scale
	switch strings.ToLower(req.Scale) {
	case "":
	case "paper":
		scales = []experiments.Scale{experiments.ScalePaper}
	case "quick", "smoke":
		scales = []experiments.Scale{experiments.ScaleQuick}
	default:
		return nil, fmt.Errorf("unknown scale %q (want \"paper\", \"quick\" or \"smoke\")", req.Scale)
	}
	var scheds []failure.Schedule
	for _, spec := range req.Schedules {
		sched, err := failure.ParseSchedule(spec)
		if err != nil {
			return nil, err
		}
		scheds = append(scheds, sched)
	}
	var engines []experiments.Engine
	for _, name := range req.Engines {
		eng, err := experiments.ParseEngine(strings.ToLower(strings.TrimSpace(name)))
		if err != nil {
			return nil, err
		}
		engines = append(engines, eng)
	}
	if req.SeedSet < 0 || req.SeedSet > 1024 {
		return nil, fmt.Errorf("seed_set=%d out of range [0, 1024]", req.SeedSet)
	}
	return runner.Grid{
		Specs:       specs,
		Scales:      scales,
		Seeds:       req.Seeds,
		FailureAts:  req.FailureAts,
		Schedules:   scheds,
		Nodes:       req.Nodes,
		Tenants:     req.Tenants,
		Speculation: req.Speculation,
		Engines:     engines,
		SeedSet:     req.SeedSet,
	}.Jobs(), nil
}

// clientID identifies the requester for fair scheduling: the X-Client-ID
// header when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host := r.RemoteAddr
	if i := strings.LastIndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	return host
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	type specInfo struct {
		Key  string `json:"key"`
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	var out []specInfo
	for _, sp := range experiments.Registry() {
		out = append(out, specInfo{Key: sp.Key, Name: sp.Name, Desc: sp.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsNow())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jobState tracks one grid job through a request.
type jobState struct {
	job   runner.Job
	e     *entry
	owner bool
}

// Stream event payloads (one JSON object per NDJSON line / SSE data frame).
type acceptedEvent struct {
	Type    string `json:"type"` // "accepted"
	Jobs    int    `json:"jobs"`
	Client  string `json:"client"`
	Timeout string `json:"timeout"`
}

type resultEvent struct {
	Type   string              `json:"type"` // "result"
	Index  int                 `json:"index"`
	Cache  string              `json:"cache"` // "hit" | "miss"
	Result runner.ReportResult `json:"result"`
}

type errorEvent struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

type reportEvent struct {
	Type   string        `json:"type"` // "report"
	Report runner.Report `json:"report"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	var req SweepRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	jobs, err := buildJobs(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(jobs) == 0 {
		http.Error(w, "empty sweep grid", http.StatusBadRequest)
		return
	}
	if len(jobs) > s.cfg.MaxJobsPerRequest {
		http.Error(w, fmt.Sprintf("sweep grid of %d jobs exceeds the per-request cap of %d",
			len(jobs), s.cfg.MaxJobsPerRequest), http.StatusRequestEntityTooLarge)
		return
	}

	timeout := s.cfg.RequestTimeout
	if req.TimeoutSec > 0 {
		if d := time.Duration(req.TimeoutSec * float64(time.Second)); d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	client := clientID(r)

	// Admission: register cache interest for every job, then submit the
	// misses as one atomic batch. admitMu makes reject-and-roll-back
	// invisible to concurrent requests (see its field comment).
	if err := s.admitMu.lock(ctx); err != nil {
		http.Error(w, "canceled before admission", http.StatusServiceUnavailable)
		return
	}
	states := make([]jobState, len(jobs))
	var owned []schedJob
	for i, j := range jobs {
		key := experiments.ConfigDigest(j.Key, j.Config)
		e, owner := s.cache.acquire(key)
		states[i] = jobState{job: j, e: e, owner: owner}
		if owner {
			owned = append(owned, schedJob{job: j, e: e})
		}
	}
	if err := s.sched.submit(client, owned); err != nil {
		for _, st := range states {
			s.cache.release(st.e)
		}
		s.admitMu.unlock()
		switch err {
		case errDraining:
			http.Error(w, "server draining", http.StatusServiceUnavailable)
		case errQueueFull, errClientBacklog:
			w.Header().Set("Retry-After", strconv.Itoa(s.sched.retryAfterSec()))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	s.admitMu.unlock()

	// Past admission: every entry is either scheduled or already
	// in-flight/cached. Release whatever we still hold on the way out
	// (abandoned sole-interest jobs are skipped by the workers).
	released := make([]bool, len(states))
	defer func() {
		for i, st := range states {
			if !released[i] {
				s.cache.release(st.e)
			}
		}
	}()

	stream := req.Stream == nil || *req.Stream
	sse := stream && strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	var write func(v any) error
	var flush func()
	if stream {
		if sse {
			w.Header().Set("Content-Type", "text/event-stream")
		} else {
			w.Header().Set("Content-Type", "application/x-ndjson")
		}
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		flush = func() {
			if flusher != nil {
				flusher.Flush()
			}
		}
		write = func(v any) error {
			b, err := json.Marshal(v)
			if err != nil {
				return err
			}
			if sse {
				_, err = fmt.Fprintf(w, "data: %s\n\n", b)
			} else {
				_, err = fmt.Fprintf(w, "%s\n", b)
			}
			flush()
			return err
		}
		_ = write(acceptedEvent{Type: "accepted", Jobs: len(jobs), Client: client, Timeout: timeout.String()})
	}

	// Completion fan-in: one goroutine per job parks on its entry and
	// reports the index. The channel is buffered to len(jobs) so no
	// goroutine can leak blocked on send after a timeout.
	completions := make(chan int, len(states))
	for i := range states {
		go func(i int) {
			select {
			case <-states[i].e.done:
				completions <- i
			case <-ctx.Done():
			}
		}(i)
	}

	results := make([]runner.Result, len(states))
	completed := make([]bool, len(states))
	timedOut := false
	for n := 0; n < len(states); n++ {
		select {
		case i := <-completions:
			res := states[i].e.res
			results[i] = res
			completed[i] = true
			s.cache.release(states[i].e)
			released[i] = true
			if stream {
				rep := runner.NewReport([]runner.Result{res}, false)
				kind := "hit"
				if states[i].owner {
					kind = "miss"
				}
				if err := write(resultEvent{Type: "result", Index: i, Cache: kind, Result: rep.Results[0]}); err != nil {
					// Client gone; keep draining completions so admitted
					// jobs still land in the cache, but stop writing.
					write = func(any) error { return nil }
				}
			}
		case <-ctx.Done():
			timedOut = true
		}
		if timedOut {
			break
		}
	}

	for i := range states {
		if !completed[i] {
			results[i] = runner.Result{
				Name:   states[i].job.Name,
				Config: states[i].job.Config,
				Err:    "server: request timed out before the job completed",
			}
		}
	}

	report := runner.NewReport(results, false)
	if stream {
		if timedOut {
			_ = write(errorEvent{Type: "error", Error: "request timed out; unfinished jobs reported as errors"})
		}
		_ = write(reportEvent{Type: "report", Report: report})
		return
	}
	status := http.StatusOK
	if timedOut {
		status = http.StatusGatewayTimeout
	}
	// The non-streaming body is exactly the deterministic runner report —
	// byte-identical to `rcmpsim -json` over the same grid.
	b, err := runner.MarshalJSONDeterministic(results)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
	_, _ = w.Write([]byte("\n"))
}
