package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rcmp/internal/experiments"
	"rcmp/internal/runner"
)

// ---- HTTP surface ----

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postSweep(t *testing.T, url string, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSweepCachedRepeatByteIdentical is the cache-soundness acceptance
// check: the same request served cold and then out of the cache returns
// byte-identical payloads, with the repeat recorded as hits and running no
// new simulations.
func TestSweepCachedRepeatByteIdentical(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	body := `{"specs":["cost"],"scale":"quick","seeds":[0,1],"stream":false}`

	resp1, b1 := postSweep(t, ts.URL, body, nil)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: %d %s", resp1.StatusCode, b1)
	}
	st := s.statsNow()
	if st.Cache.Misses != 2 || st.Cache.Hits != 0 {
		t.Fatalf("cold stats: %+v", st.Cache)
	}
	executed := st.ExecutedJobs

	resp2, b2 := postSweep(t, ts.URL, body, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: %d %s", resp2.StatusCode, b2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached repeat not byte-identical:\n%s\n----\n%s", b1, b2)
	}
	st = s.statsNow()
	if st.Cache.Hits != 2 {
		t.Fatalf("repeat did not hit the cache: %+v", st.Cache)
	}
	if st.ExecutedJobs != executed {
		t.Fatalf("repeat re-ran simulations: %d -> %d", executed, st.ExecutedJobs)
	}
}

// TestSweepDigestDimensions: changing any one grid dimension misses the
// cache; repeating the original still hits.
func TestSweepDigestDimensions(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	base := `{"specs":["cost"],"scale":"quick","seeds":[3],"stream":false}`
	if resp, b := postSweep(t, ts.URL, base, nil); resp.StatusCode != 200 {
		t.Fatalf("base: %d %s", resp.StatusCode, b)
	}
	variants := []string{
		`{"specs":["2"],"scale":"quick","seeds":[3],"stream":false}`,                 // spec
		`{"specs":["cost"],"scale":"paper","seeds":[3],"stream":false}`,              // scale
		`{"specs":["cost"],"scale":"quick","seeds":[4],"stream":false}`,              // seed
		`{"specs":["cost"],"scale":"quick","seeds":[3],"nodes":[16],"stream":false}`, // nodes
	}
	misses := s.statsNow().Cache.Misses
	for _, v := range variants {
		if resp, b := postSweep(t, ts.URL, v, nil); resp.StatusCode != 200 {
			t.Fatalf("variant %s: %d %s", v, resp.StatusCode, b)
		}
		st := s.statsNow()
		if st.Cache.Misses != misses+1 {
			t.Fatalf("variant %s did not miss (misses %d -> %d)", v, misses, st.Cache.Misses)
		}
		misses = st.Cache.Misses
	}
	hits := s.statsNow().Cache.Hits
	if resp, _ := postSweep(t, ts.URL, base, nil); resp.StatusCode != 200 {
		t.Fatal("base repeat failed")
	}
	if st := s.statsNow(); st.Cache.Hits != hits+1 {
		t.Fatalf("base repeat did not hit: %+v", st.Cache)
	}
}

// TestSweepStreamNDJSON exercises the streaming path: an accepted line,
// one result line per job in completion order with cache attribution, and
// a final report in input order.
func TestSweepStreamNDJSON(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	body := `{"specs":["cost","2"],"scale":"quick"}`
	resp, raw := postSweep(t, ts.URL, body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var types []string
	var results int
	var report runner.Report
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		var typ string
		_ = json.Unmarshal(ev["type"], &typ)
		types = append(types, typ)
		switch typ {
		case "result":
			results++
			var kind string
			_ = json.Unmarshal(ev["cache"], &kind)
			if kind != "hit" && kind != "miss" {
				t.Fatalf("result line cache = %q", kind)
			}
		case "report":
			var re struct {
				Report runner.Report `json:"report"`
			}
			if err := json.Unmarshal(sc.Bytes(), &re); err != nil {
				t.Fatal(err)
			}
			report = re.Report
		}
	}
	if types[0] != "accepted" || types[len(types)-1] != "report" {
		t.Fatalf("event order %v", types)
	}
	if results != 2 || len(report.Results) != 2 {
		t.Fatalf("results streamed %d, report %d, want 2", results, len(report.Results))
	}
	// Input order in the final report: specs were ["cost","2"].
	if !strings.HasPrefix(report.Results[0].Name, "CostModels") || !strings.HasPrefix(report.Results[1].Name, "Fig2") {
		t.Fatalf("report order %q, %q", report.Results[0].Name, report.Results[1].Name)
	}
	for _, rr := range report.Results {
		if rr.Error != "" {
			t.Fatalf("job %s errored: %s", rr.Name, rr.Error)
		}
	}
}

// TestSweepSSE: the same stream framed as server-sent events.
func TestSweepSSE(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, raw := postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick"}`,
		map[string]string{"Accept": "text/event-stream"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	if !bytes.HasPrefix(raw, []byte("data: {")) || !bytes.Contains(raw, []byte(`"type":"report"`)) {
		t.Fatalf("not SSE-framed: %s", raw)
	}
}

// TestSweepMatchesCLIReport: the non-streaming response body is exactly
// the deterministic runner report the CLI would emit for the same grid.
func TestSweepMatchesCLIReport(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, body := postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick","seeds":[7],"stream":false}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, body)
	}
	sp, ok := experiments.Lookup("cost")
	if !ok {
		t.Fatal("no cost spec")
	}
	jobs := runner.Grid{
		Specs:  []experiments.Spec{sp},
		Scales: []experiments.Scale{experiments.ScaleQuick},
		Seeds:  []int64{7},
	}.Jobs()
	pool := runner.Runner{Workers: 1}
	want, err := runner.MarshalJSONDeterministic(pool.Run(jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimRight(body, "\n"), bytes.TrimRight(want, "\n")) {
		t.Fatalf("server report diverges from CLI report:\n%s\n----\n%s", body, want)
	}
}

// TestSingleFlightConcurrentIdentical: many concurrent identical requests
// run the simulation exactly once.
func TestSingleFlightConcurrentIdentical(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	const clients = 16
	body := `{"specs":["cost"],"scale":"quick","seeds":[42],"stream":false}`
	var wg sync.WaitGroup
	bodies := make([][]byte, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			req.Header.Set("X-Client-ID", fmt.Sprintf("client-%d", i))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d saw different bytes", i)
		}
	}
	if st := s.statsNow(); st.ExecutedJobs != 1 {
		t.Fatalf("single-flight ran %d simulations, want 1", st.ExecutedJobs)
	}
}

// TestAdmissionBackpressure: a sweep that cannot fit the global queue is
// refused with 429 and a Retry-After hint, atomically (nothing admitted).
func TestAdmissionBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, MaxQueuedJobs: 1, MaxJobsPerRequest: 64})
	resp, body := postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick","seeds":[0,1,2],"stream":false}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if q, r := s.sched.depth(); q != 0 || r != 0 {
		t.Fatalf("rejected sweep left work behind: queued=%d running=%d", q, r)
	}
	if st := s.statsNow(); st.Cache.Size != 0 {
		t.Fatalf("rejected sweep left cache entries: %+v", st.Cache)
	}
	// A sweep that fits still succeeds afterwards — rollback stranded nothing.
	resp, body = postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick","stream":false}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up sweep: %d %s", resp.StatusCode, body)
	}
}

// TestPerClientBacklogCap: one client cannot occupy the queue beyond its
// lane cap, while another client still gets in.
func TestPerClientBacklogCap(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxClientBacklog: 2, MaxJobsPerRequest: 64})
	hog := map[string]string{"X-Client-ID": "hog"}
	resp, body := postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick","seeds":[10,11,12],"stream":false}`, hog)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap sweep: %d %s", resp.StatusCode, body)
	}
	resp, body = postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick","seeds":[13],"stream":false}`,
		map[string]string{"X-Client-ID": "small"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small client rejected: %d %s", resp.StatusCode, body)
	}
}

// TestBadRequests: malformed sweeps are 4xx, not 5xx or hangs.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxJobsPerRequest: 4})
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},
		{`{"specs":["nope"]}`, http.StatusBadRequest},
		{`{"specs":["cost"],"scale":"huge"}`, http.StatusBadRequest},
		{`{"specs":["cost"],"schedules":["bogus@@"]}`, http.StatusBadRequest},
		{`{"specs":["cost"],"scale":"quick","seeds":[0,1,2,3,4]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, body := postSweep(t, ts.URL, tc.body, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s -> %d (%s), want %d", tc.body, resp.StatusCode, body, tc.want)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/sweep"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/sweep -> %d, want 405", resp.StatusCode)
		}
	}
}

// TestGracefulShutdownDrains: Shutdown refuses new sweeps but completes
// admitted jobs before returning.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan []byte, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep",
			strings.NewReader(`{"specs":["cost","2"],"scale":"quick","stream":false}`))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		done <- b
	}()
	// Let the request reach admission before draining.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if resp, _ := postSweep(t, ts.URL, `{"specs":["cost"],"scale":"quick"}`, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown sweep status %d, want 503", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("healthz during drain: %d", resp.StatusCode)
		}
	}
	select {
	case b := <-done:
		var rep runner.Report
		if err := json.Unmarshal(b, &rep); err != nil {
			t.Fatalf("in-flight request corrupted by shutdown: %v (%s)", err, b)
		}
		for _, rr := range rep.Results {
			if rr.Error != "" {
				t.Fatalf("in-flight job failed during drain: %s", rr.Error)
			}
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestStatsAndExperimentsEndpoints sanity-checks the read-only surface.
func TestStatsAndExperimentsEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var specs []map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&specs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(specs) != len(experiments.Registry()) {
		t.Fatalf("experiments listed %d, want %d", len(specs), len(experiments.Registry()))
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Workers != 1 {
		t.Fatalf("stats workers %d", st.Workers)
	}
}
