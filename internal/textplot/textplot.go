// Package textplot renders experiment results as aligned ASCII tables and
// series, so every benchmark and example prints the same rows and series
// the paper's tables and figures report.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Num formats a float compactly: integers without decimals, small values
// with two decimals, NaN as "-".
func Num(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Table renders a titled table with a header row, aligning columns.
func Table(title string, header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Series renders one or more y-series against a shared x column, in the
// order the names are given.
func Series(title, xName string, xs []float64, names []string, ys map[string][]float64) string {
	header := append([]string{xName}, names...)
	var rows [][]string
	for i, x := range xs {
		row := []string{Num(x)}
		for _, n := range names {
			s := ys[n]
			if i < len(s) {
				row = append(row, Num(s[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return Table(title, header, rows)
}

// Bars renders labeled values with a proportional ASCII bar, like a bar
// chart figure.
func Bars(title string, labels []string, values []float64, barUnit float64) string {
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "== %s ==\n", title)
	}
	for i, l := range labels {
		v := values[i]
		n := 0
		if barUnit > 0 && !math.IsNaN(v) {
			n = int(v / barUnit)
		}
		if n > 120 {
			n = 120
		}
		fmt.Fprintf(&b, "%-*s  %8s  %s\n", width, l, Num(v), strings.Repeat("#", n))
	}
	return b.String()
}
