package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestNum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.14"},
		{123.456, "123.5"},
		{math.NaN(), "-"},
		{0, "0"},
	}
	for _, c := range cases {
		if got := Num(c.in); got != c.want {
			t.Errorf("Num(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table("t", []string{"name", "v"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "2.5"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== t ==") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// All data lines align the second column.
	idx := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "2.5")
	if idx != idx2 {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	out := Table("", []string{"a"}, nil)
	if strings.Contains(out, "==") {
		t.Fatalf("untitled table has title marker: %q", out)
	}
}

func TestSeries(t *testing.T) {
	out := Series("s", "x", []float64{1, 2}, []string{"a", "b"}, map[string][]float64{
		"a": {10, 20},
		"b": {30}, // short series pads with "-"
	})
	if !strings.Contains(out, "10") || !strings.Contains(out, "30") {
		t.Fatalf("series values missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimRight(last, " "), "-") {
		t.Fatalf("short series not padded: %q", last)
	}
}

func TestBars(t *testing.T) {
	out := Bars("b", []string{"x", "longer"}, []float64{2, 4}, 1)
	if !strings.Contains(out, "##") || !strings.Contains(out, "####") {
		t.Fatalf("bars missing:\n%s", out)
	}
	// Bar width caps.
	out = Bars("", []string{"big"}, []float64{1e9}, 1)
	if strings.Count(out, "#") > 121 {
		t.Fatalf("bar not capped:\n%s", out)
	}
	// NaN and zero unit render without bars.
	out = Bars("", []string{"n"}, []float64{math.NaN()}, 0)
	if strings.Contains(out, "#") {
		t.Fatalf("NaN produced bars: %q", out)
	}
}
