package des

import (
	"math/rand"
	"sort"
	"testing"
)

// ladder_test.go pins the two-tier ladder queue: white-box checks that
// events migrate between the front heap, the rung buckets and the far
// list without perturbing the (time, seq) pop order, and a randomized
// property test against a naive sorted-slice reference model.

// TestLadderTiersExercised builds a schedule wide enough to populate all
// three tiers and checks the structure actually used them — so the parity
// tests below genuinely cross tier boundaries instead of degenerating to
// the front heap.
func TestLadderTiersExercised(t *testing.T) {
	s := New()
	for i := 0; i < 4*minFarForRung; i++ {
		s.At(Time(i), func() {})
	}
	// First Step re-rungs the far population; afterwards the rung must be
	// live and hold the bulk of the events.
	if !s.Step() {
		t.Fatal("no event fired")
	}
	if len(s.buckets) == 0 || s.cur >= len(s.buckets) {
		t.Fatalf("rung not active after re-bucketing: %d buckets, cur=%d", len(s.buckets), s.cur)
	}
	inRung := 0
	for i := s.cur; i < len(s.buckets); i++ {
		inRung += len(s.buckets[i])
	}
	if inRung == 0 {
		t.Fatal("no events landed in rung buckets")
	}
	// A push far beyond the rung horizon must land in the far list.
	s.At(1e12, func() {})
	if len(s.far) != 1 {
		t.Fatalf("far push landed in far=%d events, want 1", len(s.far))
	}
	// A push before frontEnd must land in the front heap.
	s.At(s.now, func() {})
	if len(s.front) == 0 {
		t.Fatal("near push did not land in the front heap")
	}
}

// TestLadderSeqParityAcrossTiers pins the FIFO tie-break across tier
// migrations: same-time events scheduled while the queue is rung-backed
// must still fire in sequence order after being swept into the front heap.
func TestLadderSeqParityAcrossTiers(t *testing.T) {
	s := New()
	var got []int
	// Populate enough spread to build a rung.
	for i := 0; i < 2*minFarForRung; i++ {
		s.At(Time(100+i), func() {})
	}
	s.Step() // trigger re-rung
	// Now schedule a burst of ties at one far-future instant: they land in
	// one rung bucket (or far), get swept together, and must pop FIFO.
	for i := 0; i < 20; i++ {
		i := i
		s.At(130.5, func() { got = append(got, i) })
	}
	s.Run()
	if len(got) != 20 {
		t.Fatalf("fired %d tie events, want 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v: ladder broke seq FIFO", got)
		}
	}
}

// TestLadderCancelInEveryTier cancels one event per tier and checks the
// counter and the survivors.
func TestLadderCancelInEveryTier(t *testing.T) {
	s := New()
	var events []*Event
	for i := 0; i < 3*minFarForRung; i++ {
		events = append(events, s.At(Time(i), func() {}))
	}
	s.Step() // build the rung; event 0 fired
	frontE := s.At(s.now+1e-9, func() {})
	farE := s.At(1e15, func() {})
	if frontE.tier != tierFront || farE.tier != tierFar {
		t.Fatalf("tier routing: front=%d far=%d", frontE.tier, farE.tier)
	}
	var rungE *Event
	for _, e := range events[1:] {
		if e.tier >= 0 {
			rungE = e
			break
		}
	}
	if rungE == nil {
		t.Fatal("no event in a rung bucket")
	}
	before := s.Pending()
	s.Cancel(frontE)
	s.Cancel(farE)
	s.Cancel(rungE)
	if s.Pending() != before-3 {
		t.Fatalf("Pending %d after 3 cancels, want %d", s.Pending(), before-3)
	}
	fired := 0
	for s.Step() {
		fired++
	}
	if fired != len(events)-2 { // events minus the popped first and the cancelled rung one
		t.Fatalf("fired %d, want %d", fired, len(events)-2)
	}
}

// TestLadderRescheduleAcrossTiers moves events between tiers via
// Reschedule and checks order and count.
func TestLadderRescheduleAcrossTiers(t *testing.T) {
	s := New()
	var order []string
	for i := 0; i < 2*minFarForRung; i++ {
		s.At(Time(10+i), func() {})
	}
	s.Step()                                               // build the rung
	a := s.At(1e12, func() { order = append(order, "a") }) // far
	b := s.At(s.now+0.25, func() { order = append(order, "b") })
	s.Reschedule(a, s.now+0.1) // far -> front, before b
	s.Reschedule(b, 1e12)      // front -> far
	s.Reschedule(b, s.now+0.2) // far -> front, after a
	s.RunUntil(s.now + 1)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order %v, want [a b]", order)
	}
}

// refModel is the naive reference: a slice kept sorted by (at, seq).
type refModel struct {
	events []*refEvent
}

type refEvent struct {
	at    Time
	seq   uint64
	id    int
	alive bool
}

func (m *refModel) push(at Time, seq uint64, id int) *refEvent {
	e := &refEvent{at: at, seq: seq, id: id, alive: true}
	m.events = append(m.events, e)
	sort.SliceStable(m.events, func(i, j int) bool {
		if m.events[i].at != m.events[j].at {
			return m.events[i].at < m.events[j].at
		}
		return m.events[i].seq < m.events[j].seq
	})
	return e
}

func (m *refModel) pop() *refEvent {
	for len(m.events) > 0 {
		e := m.events[0]
		m.events = m.events[1:]
		if e.alive {
			return e
		}
	}
	return nil
}

// TestLadderPropertyVsReference drives randomized interleavings of
// At/AfterTimer/Cancel/Reschedule through the ladder queue and a naive
// sorted-slice reference model, checking identical pop order (including
// seq tie-breaks — times are drawn from a small integer grid so ties are
// dense).
func TestLadderPropertyVsReference(t *testing.T) {
	type tracked struct {
		ev  *Event
		ref *refEvent
	}
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(500 + trial)))
		s := New()
		ref := &refModel{}
		var live []tracked
		var firedIDs []int
		nextID := 0
		schedule := func() {
			// Small integer time grid → frequent exact ties, exercising the
			// seq tie-break; occasional huge times exercise the far list.
			var at Time
			switch rng.Intn(10) {
			case 0:
				at = s.Now() + Time(rng.Intn(3))*1e9
			default:
				at = s.Now() + Time(rng.Intn(40))
			}
			id := nextID
			nextID++
			var ev *Event
			if rng.Intn(2) == 0 {
				ev = s.At(at, func() { firedIDs = append(firedIDs, id) })
			} else {
				d := at - s.Now()
				ev = s.AfterTimer(d, timerFunc(func() { firedIDs = append(firedIDs, id) }))
			}
			live = append(live, tracked{ev, ref.push(ev.at, ev.seq, id)})
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5 || len(live) == 0:
				schedule()
			case r < 7:
				j := rng.Intn(len(live))
				s.Cancel(live[j].ev)
				live[j].ref.alive = false
				live = append(live[:j], live[j+1:]...)
			case r < 8:
				j := rng.Intn(len(live))
				at := s.Now() + Time(rng.Intn(40))
				s.Reschedule(live[j].ev, at)
				live[j].ref.alive = false
				live[j].ref = ref.push(at, live[j].ev.seq, live[j].ref.id)
			default:
				// Fire a few events and check they match the reference.
				for k := 0; k < 1+rng.Intn(3); k++ {
					want := ref.pop()
					if want == nil {
						if s.Step() {
							t.Fatalf("trial %d: simulator fired with empty reference", trial)
						}
						break
					}
					before := len(firedIDs)
					if !s.Step() {
						t.Fatalf("trial %d: simulator empty but reference holds id %d", trial, want.id)
					}
					if len(firedIDs) != before+1 || firedIDs[before] != want.id {
						t.Fatalf("trial %d: fired id %v, reference expects %d", trial, firedIDs[before:], want.id)
					}
					// Firing removes it from live tracking.
					for j, tr := range live {
						if tr.ref == want {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
				}
			}
			if want := func() int {
				n := 0
				for _, e := range ref.events {
					if e.alive {
						n++
					}
				}
				return n
			}(); s.Pending() != want {
				t.Fatalf("trial %d op %d: Pending=%d, reference=%d", trial, op, s.Pending(), want)
			}
		}
		// Drain both and compare the tail order.
		for {
			want := ref.pop()
			if want == nil {
				break
			}
			before := len(firedIDs)
			if !s.Step() {
				t.Fatalf("trial %d: drained early, reference still holds id %d", trial, want.id)
			}
			if firedIDs[before] != want.id {
				t.Fatalf("trial %d: drain fired %d, reference expects %d", trial, firedIDs[before], want.id)
			}
		}
		if s.Step() {
			t.Fatalf("trial %d: simulator still had events after reference drained", trial)
		}
	}
}
