package des

import (
	"math/rand"
	"sort"
	"testing"
)

func TestOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v, want 3", s.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("ties not FIFO: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.After(2, func() {
		s.After(3, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Fatalf("nested After fired at %v, want 5", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.At(1, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

func TestCancelDuringRun(t *testing.T) {
	s := New()
	fired := false
	var e *Event
	e = s.At(2, func() { fired = true })
	s.At(1, func() { s.Cancel(e) })
	s.Run()
	if fired {
		t.Fatal("event cancelled at t=1 still fired at t=2")
	}
}

func TestCancelTwiceAndAfterFire(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Run()
	s.Cancel(e) // after fire: no-op
	s.Cancel(e)
	e2 := s.At(2, func() {})
	s.Cancel(e2)
	s.Cancel(e2) // double cancel: no-op
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New()
	var got []Time
	for _, tm := range []Time{1, 2, 3, 4} {
		tm := tm
		s.At(tm, func() { got = append(got, tm) })
	}
	s.RunUntil(2.5)
	if len(got) != 2 {
		t.Fatalf("fired %v, want events at 1,2 only", got)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock %v, want 2.5", s.Now())
	}
	s.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events did not fire: %v", got)
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	s.At(1, func() { count++; s.Stop() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d after Stop, want 1", count)
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestRandomizedOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		s := New()
		n := 200
		times := make([]Time, n)
		var got []Time
		for i := 0; i < n; i++ {
			times[i] = Time(rng.Intn(50))
			tm := times[i]
			s.At(tm, func() { got = append(got, tm) })
		}
		s.Run()
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			t.Fatalf("trial %d: events fired out of order", trial)
		}
		if len(got) != n {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(got), n)
		}
	}
}

// TestPendingLiveCounter is the regression test for O(1) Pending: it must
// track every way an event leaves the queue (firing, cancellation,
// rescheduling) without ever scanning the heap for cancelled entries.
func TestPendingLiveCounter(t *testing.T) {
	s := New()
	var events []*Event
	for i := 0; i < 10; i++ {
		events = append(events, s.At(Time(i+1), func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d after 10 At, want 10", s.Pending())
	}
	s.Cancel(events[3])
	s.Cancel(events[3]) // double cancel must not double-decrement
	if s.Pending() != 9 {
		t.Fatalf("Pending = %d after cancel, want 9", s.Pending())
	}
	s.Reschedule(events[7], 20) // moving an event must not change the count
	if s.Pending() != 9 {
		t.Fatalf("Pending = %d after reschedule, want 9", s.Pending())
	}
	fired := 0
	for s.Step() {
		fired++
		if want := 9 - fired; s.Pending() != want {
			t.Fatalf("Pending = %d after %d fires, want %d", s.Pending(), fired, want)
		}
	}
	if fired != 9 {
		t.Fatalf("fired %d events, want 9", fired)
	}
	s.Cancel(events[0]) // cancel after fire: no-op, no underflow
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d at drain, want 0", s.Pending())
	}
}

// TestPendingIsConstantTime checks Pending stays exact under a large
// randomized schedule/cancel/fire mix — the pattern that made the old
// O(n)-scan Pending a per-event hot spot.
func TestPendingIsConstantTime(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := New()
	var liveEvents []*Event
	want := 0
	for i := 0; i < 5000; i++ {
		switch {
		case len(liveEvents) > 0 && rng.Intn(3) == 0:
			j := rng.Intn(len(liveEvents))
			s.Cancel(liveEvents[j])
			liveEvents = append(liveEvents[:j], liveEvents[j+1:]...)
			want--
		default:
			liveEvents = append(liveEvents, s.At(s.Now()+Time(rng.Float64()*10), func() {}))
			want++
		}
		if rng.Intn(5) == 0 && s.Step() {
			want--
			// The fired event is somewhere in liveEvents; drop it by scanning
			// for the fired flag rather than tracking pop order.
			for j, e := range liveEvents {
				if e.fired {
					liveEvents = append(liveEvents[:j], liveEvents[j+1:]...)
					break
				}
			}
		}
		if s.Pending() != want {
			t.Fatalf("step %d: Pending = %d, want %d", i, s.Pending(), want)
		}
	}
}

func TestReschedule(t *testing.T) {
	s := New()
	var got []string
	e := s.At(1, func() { got = append(got, "moved") })
	s.At(2, func() { got = append(got, "fixed") })
	s.Reschedule(e, 3)
	s.Run()
	if len(got) != 2 || got[0] != "fixed" || got[1] != "moved" {
		t.Fatalf("order %v, want [fixed moved]", got)
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v, want 3", s.Now())
	}
}

// TestRescheduleTieOrder pins the cancel+push parity: a rescheduled event
// landing on the same time as an existing one must fire after it, exactly
// as a freshly scheduled replacement would.
func TestRescheduleTieOrder(t *testing.T) {
	s := New()
	var got []string
	e := s.At(1, func() { got = append(got, "rescheduled") })
	s.At(5, func() { got = append(got, "older") })
	s.Reschedule(e, 5) // fresh seq: must now sort after the t=5 event
	s.Run()
	if len(got) != 2 || got[0] != "older" || got[1] != "rescheduled" {
		t.Fatalf("tie order %v, want [older rescheduled]", got)
	}
}

func TestRescheduleMisusePanics(t *testing.T) {
	// Each case gets a fresh simulator: events are recycled through the
	// free list, so a stale handle from one case could alias a live event
	// allocated by the next and defeat the panic under test.
	cases := map[string]func(t *testing.T){
		"fired": func(t *testing.T) {
			s := New()
			e := s.At(1, func() {})
			s.Run()
			s.Reschedule(e, 2)
		},
		"cancelled": func(t *testing.T) {
			s := New()
			c := s.At(3, func() {})
			s.Cancel(c)
			s.Reschedule(c, 4)
		},
		"past": func(t *testing.T) {
			s := New()
			s.At(1, func() {})
			p := s.At(3, func() {})
			s.RunUntil(2) // advance the clock past the target time
			s.Reschedule(p, 0)
		},
		"nil": func(t *testing.T) {
			s := New()
			s.Reschedule(nil, 2)
		},
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Reschedule(%s) did not panic", name)
				}
			}()
			fn(t)
		}()
	}
}

// ---- Event recycling (free list) ----

// TestRecycleReusesEvents pins the free-list mechanics: a fired or
// cancelled event's struct is handed back to the next At, so steady-state
// scheduling cycles one allocation's worth of memory.
func TestRecycleReusesEvents(t *testing.T) {
	s := New()
	e1 := s.At(1, func() {})
	s.Run()
	e2 := s.At(2, func() {})
	if e1 != e2 {
		t.Fatal("fired event was not recycled into the next At")
	}
	s.Cancel(e2)
	e3 := s.At(3, func() {})
	if e3 != e2 {
		t.Fatal("cancelled event was not recycled into the next At")
	}
	s.Run()
}

// TestCancelThenRecycleNeverFiresStaleCallback drives the lifecycle the
// pooling contract must survive: cancel an event, let its struct be
// recycled into a new one, and check that only the new callback fires —
// the recycled struct must never run the cancelled event's function.
func TestCancelThenRecycleNeverFiresStaleCallback(t *testing.T) {
	s := New()
	stale, fresh := 0, 0
	e := s.At(1, func() { stale++ })
	s.Cancel(e)
	reused := s.At(1, func() { fresh++ })
	if reused != e {
		t.Fatal("expected the cancelled event to be recycled")
	}
	s.Run()
	if stale != 0 {
		t.Fatalf("stale callback fired %d times after cancel+recycle", stale)
	}
	if fresh != 1 {
		t.Fatalf("fresh callback fired %d times, want 1", fresh)
	}
}

// TestRescheduleThenRecycle checks the other recycle path: an event that
// was rescheduled, fired, and recycled must carry the new callback only.
func TestRescheduleThenRecycle(t *testing.T) {
	s := New()
	var order []string
	e := s.At(1, func() { order = append(order, "first") })
	s.Reschedule(e, 4)
	s.Run() // fires "first" at t=4, recycles e
	reused := s.AtTimer(5, timerFunc(func() { order = append(order, "second") }))
	if reused != e {
		t.Fatal("expected the fired event to be recycled")
	}
	s.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order %v, want [first second]", order)
	}
}

// TestRecycleClearsCallback is the white-box guarantee behind the two
// tests above: an event on the free list holds no callback at all.
func TestRecycleClearsCallback(t *testing.T) {
	s := New()
	e := s.At(1, func() {})
	s.Cancel(e)
	if e.fn != nil || e.tm != nil {
		t.Fatal("recycled event still holds a callback")
	}
	f := s.At(1, func() {})
	s.Run()
	if f.fn != nil || f.tm != nil {
		t.Fatal("fired event still holds a callback after recycling")
	}
}

// timerFunc adapts a func to Timer for tests.
type timerFunc func()

func (f timerFunc) Fire() { f() }

// TestTimerPath checks AtTimer/AfterTimer dispatch and ordering parity
// with the closure path.
func TestTimerPath(t *testing.T) {
	s := New()
	var got []string
	s.AtTimer(2, timerFunc(func() { got = append(got, "timer@2") }))
	s.At(1, func() { got = append(got, "fn@1") })
	s.AfterTimer(3, timerFunc(func() { got = append(got, "timer@3") }))
	s.Run()
	want := []string{"fn@1", "timer@2", "timer@3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestReset checks a reused simulator behaves exactly like a fresh one:
// clock at zero, restarted sequence numbering (tie order), discarded
// stale events.
func TestReset(t *testing.T) {
	s := New()
	leftover := 0
	s.At(1, func() {})
	s.At(50, func() { leftover++ }) // never reached
	s.RunUntil(2)
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Processed != 0 {
		t.Fatalf("Reset left now=%v pending=%d processed=%d", s.Now(), s.Pending(), s.Processed)
	}
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order after Reset: %v", got)
		}
	}
	if leftover != 0 {
		t.Fatal("event scheduled before Reset fired after it")
	}
}

func TestProcessedCount(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Processed != 5 {
		t.Fatalf("Processed = %d, want 5", s.Processed)
	}
}
