// Package des provides a minimal discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events are callbacks scheduled at absolute or relative virtual times.
// Ties are broken by scheduling order so runs are fully deterministic.
//
// The kernel is intentionally single-threaded: all model code runs inside
// event callbacks on the goroutine that calls Run, so model state needs no
// locking. This mirrors the structure of classic network/cluster simulators
// and keeps large experiments (hundreds of thousands of events) cheap.
//
// # The two-tier ladder queue
//
// The pending set is stored in a calendar/ladder structure instead of one
// binary heap, so push and pop stay O(1) amortized as the pending count
// grows with simulated cluster size:
//
//   - a small "front" binary heap holds the events nearest in time
//     (every event with time < frontEnd);
//   - a rung of equal-width buckets holds the mid-future, one unsorted
//     slice per bucket; when the front heap drains, the next non-empty
//     bucket is swept into it (and heapified) in one pass;
//   - an unsorted "far" overflow list holds everything beyond the rung;
//     when the rung is exhausted the far list is re-bucketed into a fresh
//     rung sized from its population and time span.
//
// Events are totally ordered by (time, sequence number) and the sequence
// number is unique, so the pop order is a property of the event set alone:
// whatever tier an event sits in, the order events fire is bit-identical
// to the old single binary heap (white-box tests pin this parity). Each
// event remembers its tier and slot, so Cancel and Reschedule remain
// eager O(1)/O(log front) removals and Pending stays an O(1) counter.
//
// # Event recycling
//
// Fired and cancelled events are recycled through a per-simulator free
// list, so steady-state simulation schedules without allocating. That
// makes Event handles single-use: a handle is valid until its callback
// runs or until Cancel returns, and must be dropped (typically by
// clearing the field that held it) at that point. Retaining a stale
// handle and cancelling it later may hit an unrelated recycled event —
// always a model bug, never detectable by the kernel. The callback of a
// recycled event is cleared before the event re-enters the free list, so
// a stale callback can never fire.
//
// # Typed callbacks
//
// The closure-based At/After allocate a closure per schedule site when
// the callback captures state. Hot model code should instead implement
// Timer (one Fire method on an object that already exists, dispatching on
// its own phase state) and schedule with AtTimer/AfterTimer: together
// with the free list this makes the schedule–fire cycle allocation-free.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Forever is a time later than any event the simulator will ever reach.
const Forever Time = Time(math.MaxFloat64)

// Timer is the allocation-free callback form: the simulator calls Fire on
// the scheduled value. Implementations are typically long-lived model
// objects that dispatch on their own phase state, so scheduling one does
// not allocate the way a capturing closure does.
type Timer interface {
	Fire()
}

// Event tier markers, stored in Event.tier. Non-negative values are rung
// bucket indices.
const (
	tierNone  = -3 // not queued (fired, cancelled, or on the free list)
	tierFar   = -2 // in the far overflow list
	tierFront = -1 // in the front heap
)

// Event is a scheduled callback. It is returned by At and After so callers
// can cancel it before it fires. Handles are single-use: once the event
// has fired or been cancelled the kernel recycles it, and the handle must
// be dropped (see the package comment).
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	tm    Timer
	index int // slot within the current tier's container, -1 when not queued
	tier  int // tierFront, tierFar, or a rung bucket index
	fired bool
	canc  bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// minFarForRung is the far-list population below which re-bucketing is not
// worth it: the whole list is swept straight into the front heap instead.
const minFarForRung = 32

// maxRungBuckets bounds the rung so a pathological far population cannot
// allocate an absurd bucket array.
const maxRungBuckets = 1 << 15

// Simulator owns the virtual clock and event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	free    []*Event // recycled events, see the package comment

	// Two-tier ladder queue state. Invariant: every event in front has
	// at < frontEnd; every event in buckets[cur:] or far has at >= frontEnd;
	// bucket i spans times below rungStart + (i+1)*width (up to the
	// transfer-time re-route for float rounding); far holds at >= rungEnd.
	front     eventHeap
	frontEnd  Time
	buckets   [][]*Event
	cur       int // next rung bucket to sweep into the front heap
	rungStart Time
	rungEnd   Time
	width     float64
	far       []*Event
	count     int // total queued events (all tiers)

	// Processed counts events that have fired, for diagnostics.
	Processed uint64

	// Absorbed counts semantic events a fast-forward layer completed in
	// closed form instead of scheduling through the queue. The kernel only
	// stores it (cleared by Reset alongside Processed) so that
	// Processed+Absorbed stays the total model-event count whatever mix of
	// exact and fast-forwarded execution produced a run.
	Absorbed uint64
}

// New returns a simulator with the clock at zero and an empty queue.
func New() *Simulator {
	return &Simulator{}
}

// Reset returns the simulator to its initial state — clock at zero, empty
// queue, sequence counter restarted — while keeping the allocated event
// pool and bucket capacities, so a reused simulator behaves exactly like a
// fresh one but schedules its first events from recycled memory. Any
// events still queued are discarded (their callbacks never fire).
func (s *Simulator) Reset() {
	for _, e := range s.front {
		e.index = -1
		e.tier = tierNone
		s.recycle(e)
	}
	s.front = s.front[:0]
	for i := s.cur; i < len(s.buckets); i++ {
		for j, e := range s.buckets[i] {
			e.index = -1
			e.tier = tierNone
			s.recycle(e)
			s.buckets[i][j] = nil
		}
		s.buckets[i] = s.buckets[i][:0]
	}
	for i, e := range s.far {
		e.index = -1
		e.tier = tierNone
		s.recycle(e)
		s.far[i] = nil
	}
	s.far = s.far[:0]
	s.buckets = s.buckets[:0]
	s.cur = 0
	s.frontEnd = 0
	s.rungStart = 0
	s.rungEnd = 0
	s.width = 0
	s.count = 0
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.Processed = 0
	s.Absorbed = 0
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// alloc pops a recycled event or makes a fresh one.
func (s *Simulator) alloc(t Time, fn func(), tm Timer) *Event {
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.fired = false
		e.canc = false
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = s.seq
	e.fn = fn
	e.tm = tm
	e.index = -1
	e.tier = tierNone
	return e
}

// recycle clears an event's callback and returns it to the free list. The
// cleared callback guarantees a recycled event can never fire stale model
// code, whatever stale handles still point at it.
func (s *Simulator) recycle(e *Event) {
	e.fn = nil
	e.tm = nil
	s.free = append(s.free, e)
}

// push routes an event into the tier its time selects. The routing is a
// pure performance decision: any tier assignment that respects the
// front/rung/far invariant yields the same pop order, because popping
// sorts by (at, seq) regardless.
func (s *Simulator) push(e *Event) {
	s.count++
	switch {
	case e.at < s.frontEnd:
		e.tier = tierFront
		heap.Push(&s.front, e)
	case e.at < s.rungEnd:
		idx := s.bucketFor(e.at, s.cur)
		e.tier = idx
		e.index = len(s.buckets[idx])
		s.buckets[idx] = append(s.buckets[idx], e)
	default:
		e.tier = tierFar
		e.index = len(s.far)
		s.far = append(s.far, e)
	}
}

// bucketFor maps a time into a rung bucket index, clamped to [lo,
// len(buckets)-1] so float rounding at a bucket boundary can never route
// an event into an already-swept bucket. Rounding can also land an event
// one bucket LATE (the subtract-then-divide pair rounding up across the
// boundary), which — unlike the early direction, which the sweep
// re-routes — would fire it after later-timestamped events; the walk-down
// restores the invariant that an event's bucket lower bound never exceeds
// its time.
func (s *Simulator) bucketFor(t Time, lo int) int {
	idx := int(float64(t-s.rungStart) / s.width)
	if idx >= len(s.buckets) {
		idx = len(s.buckets) - 1
	}
	for idx > lo && t < Time(float64(s.rungStart)+s.width*float64(idx)) {
		idx--
	}
	if idx < lo {
		idx = lo
	}
	return idx
}

// remove detaches a queued event from whatever tier holds it, O(1) for
// rung/far slots and O(log n) for the front heap.
func (s *Simulator) remove(e *Event) {
	switch {
	case e.tier == tierFront:
		heap.Remove(&s.front, e.index)
	case e.tier == tierFar:
		s.far = swapRemove(s.far, e.index)
	default:
		s.buckets[e.tier] = swapRemove(s.buckets[e.tier], e.index)
	}
	e.index = -1
	e.tier = tierNone
	s.count--
}

// swapRemove removes slot i from an unsorted tier slice, keeping the moved
// event's index current. Order within a tier slice is irrelevant: the
// front heap re-establishes the (at, seq) order at sweep time.
func swapRemove(list []*Event, i int) []*Event {
	last := len(list) - 1
	if i != last {
		moved := list[last]
		list[i] = moved
		moved.index = i
	}
	list[last] = nil
	return list[:last]
}

// ensureFront makes the front heap hold the globally earliest event,
// sweeping rung buckets (and re-bucketing the far list) as needed. It
// reports whether any event is pending.
func (s *Simulator) ensureFront() bool {
	for len(s.front) == 0 {
		if s.sweepBucket() {
			continue
		}
		if len(s.far) == 0 {
			return false
		}
		s.reRung()
	}
	return true
}

// sweepBucket moves the next non-empty rung bucket into the front heap,
// advancing frontEnd to that bucket's upper boundary. It reports whether
// a sweep happened (the front heap may still be empty if every event of
// the bucket was re-routed forward by the rounding guard).
func (s *Simulator) sweepBucket() bool {
	for s.cur < len(s.buckets) {
		i := s.cur
		s.cur++
		newEnd := Time(float64(s.rungStart) + s.width*float64(i+1))
		if i == len(s.buckets)-1 || newEnd > s.rungEnd {
			newEnd = s.rungEnd
		}
		b := s.buckets[i]
		if len(b) == 0 {
			s.frontEnd = newEnd
			continue
		}
		for j, e := range b {
			b[j] = nil
			if e.at >= newEnd {
				// Float rounding routed the event one bucket early; push it
				// forward so the front-heap invariant (everything in front is
				// earlier than everything outside) holds exactly.
				s.count-- // push re-increments
				s.push(e)
				continue
			}
			e.tier = tierFront
			e.index = len(s.front)
			s.front = append(s.front, e)
		}
		s.buckets[i] = b[:0]
		heap.Init(&s.front)
		s.frontEnd = newEnd
		return true
	}
	return false
}

// reRung rebuilds the rung from the far list: sized from the population,
// spanning its time range. A small or zero-span population goes straight
// into the front heap instead.
func (s *Simulator) reRung() {
	far := s.far
	minAt, maxAt := far[0].at, far[0].at
	for _, e := range far[1:] {
		if e.at < minAt {
			minAt = e.at
		}
		if e.at > maxAt {
			maxAt = e.at
		}
	}
	nb := len(far)
	if nb > maxRungBuckets {
		nb = maxRungBuckets
	}
	width := float64(maxAt-minAt) / float64(nb)
	if len(far) < minFarForRung || width <= 0 || math.IsInf(width, 1) {
		// Sweep everything into the front heap. frontEnd moves just past the
		// latest time so future pushes route normally.
		for j, e := range far {
			far[j] = nil
			e.tier = tierFront
			e.index = len(s.front)
			s.front = append(s.front, e)
		}
		s.far = far[:0]
		heap.Init(&s.front)
		s.frontEnd = Time(math.Nextafter(float64(maxAt), math.Inf(1)))
		s.rungEnd = s.frontEnd
		return
	}
	if cap(s.buckets) < nb {
		s.buckets = append(s.buckets[:cap(s.buckets)], make([][]*Event, nb-cap(s.buckets))...)
	}
	s.buckets = s.buckets[:nb]
	s.cur = 0
	s.rungStart = minAt
	s.width = width
	end := Time(float64(minAt) + width*float64(nb))
	if end <= maxAt {
		end = Time(math.Nextafter(float64(maxAt), math.Inf(1)))
	}
	s.rungEnd = end
	s.frontEnd = minAt
	kept := far[:0]
	for _, e := range far {
		if e.at >= s.rungEnd {
			e.index = len(kept)
			kept = append(kept, e)
			continue
		}
		idx := s.bucketFor(e.at, 0)
		e.tier = idx
		e.index = len(s.buckets[idx])
		s.buckets[idx] = append(s.buckets[idx], e)
	}
	for i := len(kept); i < len(far); i++ {
		far[i] = nil
	}
	s.far = kept
}

// At schedules fn to run at absolute virtual time t.
// Scheduling in the past panics: it always indicates a model bug.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc(t, fn, nil)
	s.push(e)
	return e
}

// AtTimer schedules tm.Fire to run at absolute virtual time t. This is
// the allocation-free form of At for callbacks that live on an existing
// model object. Scheduling in the past panics.
func (s *Simulator) AtTimer(t Time, tm Timer) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc(t, nil, tm)
	s.push(e)
	return e
}

// Reschedule moves a pending event to absolute time t without allocating a
// new one. It is the in-place equivalent of Cancel followed by At with the
// same callback: the event is assigned a fresh sequence number, so its
// ordering against same-time events is exactly what the cancel+push pair
// would produce. Rescheduling a fired or cancelled event panics — the
// callback is gone, so it always indicates a lifecycle bug in the model.
func (s *Simulator) Reschedule(e *Event, t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: rescheduling event at %v before now %v", t, s.now))
	}
	if e == nil || e.fired || e.canc || e.index < 0 {
		panic("des: Reschedule of a fired, cancelled or unqueued event")
	}
	s.remove(e)
	e.at = t
	s.seq++
	e.seq = s.seq
	s.push(e)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AfterTimer schedules tm.Fire to run d seconds from now. Negative d
// panics.
func (s *Simulator) AfterTimer(d Time, tm Timer) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.AtTimer(s.now+d, tm)
}

// Cancel prevents a pending event from firing and recycles it. Cancelling
// an event that has already fired or been cancelled is a no-op — but only
// while the handle is fresh; see the package comment on handle lifetime.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.fired || e.canc {
		return
	}
	e.canc = true
	if e.index >= 0 {
		s.remove(e)
		s.recycle(e)
	}
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	if !s.ensureFront() {
		return false
	}
	e := heap.Pop(&s.front).(*Event)
	e.tier = tierNone
	s.count--
	s.now = e.at
	e.fired = true
	s.Processed++
	// Fire, then recycle: during the callback the event is marked
	// fired, so a self-Cancel is a no-op and a Reschedule panics; the
	// callback cannot observe the recycled state.
	if e.tm != nil {
		e.tm.Fire()
	} else {
		e.fn()
	}
	s.recycle(e)
	return true
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if !s.ensureFront() || s.front[0].at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Stop makes the current Run/RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// NextAt reports the time of the earliest pending event without firing it —
// the queue's quiescence horizon: nothing scheduled through the kernel can
// happen before it. It sweeps ladder tiers as needed (the same work Step
// would do), so the peek is amortized O(1) and leaves the pop order
// untouched. The second result is false when the queue is empty.
func (s *Simulator) NextAt() (Time, bool) {
	if !s.ensureFront() {
		return 0, false
	}
	return s.front[0].at, true
}

// SetNow advances the clock to t without firing anything — the clock jump
// of a fast-forward layer that has completed the interval's work in closed
// form. Moving the clock backwards, or past the earliest pending event,
// panics: either would break the monotonic-time invariant every scheduled
// callback relies on.
func (s *Simulator) SetNow(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: SetNow to %v before now %v", t, s.now))
	}
	if next, ok := s.NextAt(); ok && t > next {
		panic(fmt.Sprintf("des: SetNow to %v past pending event at %v", t, next))
	}
	s.now = t
}

// Pending returns the number of queued (uncancelled) events in O(1).
// Cancel removes events from their tier eagerly and Step pops fired ones,
// so every queued event is live and the maintained count IS the pending
// count — no separately drifting counter, no scan.
func (s *Simulator) Pending() int { return s.count }
