// Package des provides a minimal discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events.
// Events are callbacks scheduled at absolute or relative virtual times.
// Ties are broken by scheduling order so runs are fully deterministic.
//
// The kernel is intentionally single-threaded: all model code runs inside
// event callbacks on the goroutine that calls Run, so model state needs no
// locking. This mirrors the structure of classic network/cluster simulators
// and keeps large experiments (hundreds of thousands of events) cheap.
//
// # Event recycling
//
// Fired and cancelled events are recycled through a per-simulator free
// list, so steady-state simulation schedules without allocating. That
// makes Event handles single-use: a handle is valid until its callback
// runs or until Cancel returns, and must be dropped (typically by
// clearing the field that held it) at that point. Retaining a stale
// handle and cancelling it later may hit an unrelated recycled event —
// always a model bug, never detectable by the kernel. The callback of a
// recycled event is cleared before the event re-enters the free list, so
// a stale callback can never fire.
//
// # Typed callbacks
//
// The closure-based At/After allocate a closure per schedule site when
// the callback captures state. Hot model code should instead implement
// Timer (one Fire method on an object that already exists, dispatching on
// its own phase state) and schedule with AtTimer/AfterTimer: together
// with the free list this makes the schedule–fire cycle allocation-free.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time float64

// Forever is a time later than any event the simulator will ever reach.
const Forever Time = Time(math.MaxFloat64)

// Timer is the allocation-free callback form: the simulator calls Fire on
// the scheduled value. Implementations are typically long-lived model
// objects that dispatch on their own phase state, so scheduling one does
// not allocate the way a capturing closure does.
type Timer interface {
	Fire()
}

// Event is a scheduled callback. It is returned by At and After so callers
// can cancel it before it fires. Handles are single-use: once the event
// has fired or been cancelled the kernel recycles it, and the handle must
// be dropped (see the package comment).
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	tm     Timer
	index  int // heap index, -1 when not queued
	fired  bool
	cancel bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and event queue.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	free    []*Event // recycled events, see the package comment
	// Processed counts events that have fired, for diagnostics.
	Processed uint64
}

// New returns a simulator with the clock at zero and an empty queue.
func New() *Simulator {
	return &Simulator{}
}

// Reset returns the simulator to its initial state — clock at zero, empty
// queue, sequence counter restarted — while keeping the allocated event
// pool, so a reused simulator behaves exactly like a fresh one but
// schedules its first events from recycled memory. Any events still
// queued are discarded (their callbacks never fire).
func (s *Simulator) Reset() {
	for _, e := range s.queue {
		e.index = -1
		s.recycle(e)
	}
	s.queue = s.queue[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.Processed = 0
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// alloc pops a recycled event or makes a fresh one.
func (s *Simulator) alloc(t Time, fn func(), tm Timer) *Event {
	s.seq++
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.fired = false
		e.cancel = false
	} else {
		e = &Event{}
	}
	e.at = t
	e.seq = s.seq
	e.fn = fn
	e.tm = tm
	e.index = -1
	return e
}

// recycle clears an event's callback and returns it to the free list. The
// cleared callback guarantees a recycled event can never fire stale model
// code, whatever stale handles still point at it.
func (s *Simulator) recycle(e *Event) {
	e.fn = nil
	e.tm = nil
	s.free = append(s.free, e)
}

// At schedules fn to run at absolute virtual time t.
// Scheduling in the past panics: it always indicates a model bug.
func (s *Simulator) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc(t, fn, nil)
	heap.Push(&s.queue, e)
	return e
}

// AtTimer schedules tm.Fire to run at absolute virtual time t. This is
// the allocation-free form of At for callbacks that live on an existing
// model object. Scheduling in the past panics.
func (s *Simulator) AtTimer(t Time, tm Timer) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %v before now %v", t, s.now))
	}
	e := s.alloc(t, nil, tm)
	heap.Push(&s.queue, e)
	return e
}

// Reschedule moves a pending event to absolute time t without allocating a
// new one. It is the in-place equivalent of Cancel followed by At with the
// same callback: the event is assigned a fresh sequence number, so its
// ordering against same-time events is exactly what the cancel+push pair
// would produce. Rescheduling a fired or cancelled event panics — the
// callback is gone, so it always indicates a lifecycle bug in the model.
func (s *Simulator) Reschedule(e *Event, t Time) {
	if t < s.now {
		panic(fmt.Sprintf("des: rescheduling event at %v before now %v", t, s.now))
	}
	if e == nil || e.fired || e.cancel || e.index < 0 {
		panic("des: Reschedule of a fired, cancelled or unqueued event")
	}
	e.at = t
	s.seq++
	e.seq = s.seq
	heap.Fix(&s.queue, e.index)
}

// After schedules fn to run d seconds from now. Negative d panics.
func (s *Simulator) After(d Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.At(s.now+d, fn)
}

// AfterTimer schedules tm.Fire to run d seconds from now. Negative d
// panics.
func (s *Simulator) AfterTimer(d Time, tm Timer) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: negative delay %v", d))
	}
	return s.AtTimer(s.now+d, tm)
}

// Cancel prevents a pending event from firing and recycles it. Cancelling
// an event that has already fired or been cancelled is a no-op — but only
// while the handle is fresh; see the package comment on handle lifetime.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.fired || e.cancel {
		return
	}
	e.cancel = true
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
		s.recycle(e)
	}
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		e.fired = true
		s.Processed++
		// Fire, then recycle: during the callback the event is marked
		// fired, so a self-Cancel is a no-op and a Reschedule panics; the
		// callback cannot observe the recycled state.
		if e.tm != nil {
			e.tm.Fire()
		} else {
			e.fn()
		}
		s.recycle(e)
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.Step() {
	}
}

// RunUntil fires events with time <= t, then advances the clock to t.
func (s *Simulator) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 || s.peek().at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// Stop makes the current Run/RunUntil return after the current event.
func (s *Simulator) Stop() { s.stopped = true }

// Pending returns the number of queued (uncancelled) events in O(1), so
// callers may poll it per event without turning the run into an O(n^2)
// scan. Cancel removes events from the heap eagerly and Step pops fired
// ones, so every event still queued is live and the queue length IS the
// pending count — no separately maintained counter to drift out of sync.
func (s *Simulator) Pending() int { return len(s.queue) }

func (s *Simulator) peek() *Event {
	// The heap may have cancelled events removed eagerly, so the root is live.
	return s.queue[0]
}
