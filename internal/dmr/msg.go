// Package dmr is the distributed RCMP runtime: a real networked
// master/worker MapReduce system in the shape of the paper's Figure 3,
// built on TCP message passing (internal/wire).
//
// The roles match the paper:
//
//   - Workers (one per "compute node") store DFS blocks and persisted map
//     outputs, execute mapper and reducer tasks over real key-value
//     records, serve shuffle fetches to peers, and heartbeat the master.
//     Killing a worker loses both its computation and its stored data —
//     the collocated failure model of Section II.
//   - The Master tracks worker liveness with a heartbeat timeout (the
//     paper's 30 s detection timeout, configurable), owns the DFS
//     metadata, schedules tasks onto worker slots (waves emerge from slot
//     occupancy), and cancels the running job when a death causes
//     irreversible data loss.
//   - The Driver is the paper's middleware: it submits the chain one job
//     at a time, and on data loss builds the minimal cascade with the
//     shared planner (internal/core) and resubmits recomputation jobs
//     tagged with the reducer outputs to regenerate — including reducer
//     splitting and the Figure 5 split-invalidation rule.
//
// The runtime is chaos-hardened: every connection can carry a fault
// injector (wire.Chaos — deterministic latency, jitter, drops, one-way
// partitions, mid-stream resets), RPCs retry transport errors with
// jittered exponential backoff (wire.RetryPolicy), and the worker's
// heartbeat loop re-dials a poisoned master client instead of letting a
// transient transport fault masquerade as a death. Only faults that
// outlive the detection timeout become failures; the chaos regression
// tests pin that boundary from both sides.
//
// The same planner, partitioner, and UDFs drive the simulator and the
// functional engine, so a chain executed on this runtime with failures
// injected must produce byte-identical output digests to a failure-free
// run — which the integration tests assert over real sockets, and which
// internal/xval (docs/crossval.md) extends into a cross-engine gate:
// the recovery decisions this runtime makes must be identical to the
// simulator's under equivalent injections.
package dmr

import (
	"rcmp/internal/wire"
	"rcmp/internal/workload"
)

// ---- Master-bound messages ----

// RegisterReq announces a worker to the master.
type RegisterReq struct {
	Worker int    // node ID, dense 0..N-1
	Addr   string // worker's listen address for task/fetch traffic
}

// RegisterResp acknowledges registration.
type RegisterResp struct{}

// HeartbeatReq refreshes a worker's liveness lease.
type HeartbeatReq struct {
	Worker int
}

// HeartbeatResp acknowledges a heartbeat.
type HeartbeatResp struct{}

// ---- Worker-bound task messages ----

// RunMapperReq executes one mapper task: read block (Part, Block) of
// InFile — locally if stored, otherwise from Holders in order (the remote
// read that forms hot-spots during recomputation) — apply the map UDF, and
// persist the bucketed output under (Job, Mapper).
type RunMapperReq struct {
	Job         int
	Mapper      int
	InFile      string
	Part        int
	Block       int
	NumReducers int
	Holders     []string // live addresses holding the input block
}

// RunMapperResp reports a completed mapper.
type RunMapperResp struct {
	// PerReducerRecords counts the mapper's output records per reducer.
	PerReducerRecords []int64
	// OutputBytes is the total persisted map-output payload size.
	OutputBytes int64
	// RemoteRead reports whether the input block was fetched from a peer.
	RemoteRead bool
}

// MapSrc locates one mapper's persisted output for the shuffle, identified
// by the input block it consumed.
type MapSrc struct {
	Part  int
	Block int
	Addr  string
}

// RunReducerReq executes reducer Reducer (split Split of Splits) of a job:
// fetch the matching key range from every mapper output in Sources, group,
// apply the reduce UDF, store the output as block OutBlock of partition
// OutPart of OutFile, and push replicas to ReplicaAddrs.
type RunReducerReq struct {
	Job         int
	Reducer     int
	Split       int // 0-based split index; 0 when Splits == 1
	Splits      int // 1 = whole reducer
	NumReducers int
	Sources     []MapSrc

	OutFile  string
	OutPart  int
	OutBlock int // block index this task writes (its split number)
	// CarveRecords, when > 0 and Splits == 1, carves the output into blocks
	// of at most this many records starting at OutBlock, so the next job's
	// map phase gets one task per block (the paper's multi-wave map phases).
	CarveRecords int
	ReplicaAddrs []string

	// ScatterAddrs, when non-empty (Splits == 1 only), is the Section
	// IV-B2 alternative to splitting: output block i is stored on
	// ScatterAddrs[i mod len] instead of locally, spreading the regenerated
	// partition over many nodes without dividing the reduce work. The
	// master derives the matching replica sets with the same rotation.
	ScatterAddrs []string
}

// RunReducerResp reports a completed reducer (or split).
type RunReducerResp struct {
	// BlockRecords lists the record count of each block written, in block
	// order starting at OutBlock. One entry unless CarveRecords split it.
	BlockRecords []int64
	// OutputBytes is the total payload written (before replication).
	OutputBytes int64
}

// ---- Worker-to-worker data-plane messages ----

// PutBlockReq stores records as block (Part, Block) of File on the target
// worker. Used to load the computation input and to push output replicas.
type PutBlockReq struct {
	File    string
	Part    int
	Block   int
	Records []workload.Record
}

// PutBlockResp acknowledges a stored block.
type PutBlockResp struct{}

// FetchBlockReq reads a stored block.
type FetchBlockReq struct {
	File  string
	Part  int
	Block int
}

// FetchBlockResp carries the block payload.
type FetchBlockResp struct {
	Records []workload.Record
}

// FetchMapOutReq reads the slice of a persisted map output destined for
// one reducer — and, when Splits > 1, for one split of that reducer. The
// split filter runs at the source so a split shuffles only its share of
// the data, like the paper's split reducers.
type FetchMapOutReq struct {
	Job     int
	Part    int // input partition the mapper consumed
	Block   int // input block the mapper consumed
	Reducer int
	Split   int
	Splits  int
}

// FetchMapOutResp carries the shuffle payload.
type FetchMapOutResp struct {
	Records []workload.Record
}

// DropPartitionReq deletes all locally stored blocks of a partition, ahead
// of its regeneration by a recomputation.
type DropPartitionReq struct {
	File string
	Part int
}

// DropPartitionResp acknowledges the drop.
type DropPartitionResp struct{}

// DropFileReq deletes all locally stored blocks of a file (restarting an
// interrupted job rewrites its output from scratch).
type DropFileReq struct {
	File string
}

// DropFileResp acknowledges the drop.
type DropFileResp struct{}

// DropMapOutputsReq releases persisted map outputs of the given jobs
// (checkpoint reclamation, Section IV-C).
type DropMapOutputsReq struct {
	Jobs []int
}

// DropMapOutputsResp acknowledges the release.
type DropMapOutputsResp struct{}

// MapOutRef names one persisted map output by the input block it consumed.
type MapOutRef struct {
	Job   int
	Part  int
	Block int
}

// EvictMapOutputsReq releases specific persisted map outputs (the
// wave-granularity storage-pressure eviction of Section IV-C).
type EvictMapOutputsReq struct {
	Refs []MapOutRef
}

// EvictMapOutputsResp acknowledges the eviction.
type EvictMapOutputsResp struct{}

// DigestReq asks for the order-independent digest of one stored partition
// block (verification plane; tests compare failure-free vs recovered runs).
type DigestReq struct {
	File  string
	Part  int
	Block int
}

// DigestResp carries the digest.
type DigestResp struct {
	Digest workload.Digest
}

// PingReq checks liveness of a worker's data plane.
type PingReq struct{}

// PingResp acknowledges a ping.
type PingResp struct{}

func init() {
	for _, m := range []any{
		RegisterReq{}, RegisterResp{},
		HeartbeatReq{}, HeartbeatResp{},
		RunMapperReq{}, RunMapperResp{},
		RunReducerReq{}, RunReducerResp{},
		PutBlockReq{}, PutBlockResp{},
		FetchBlockReq{}, FetchBlockResp{},
		FetchMapOutReq{}, FetchMapOutResp{},
		DropPartitionReq{}, DropPartitionResp{},
		DropFileReq{}, DropFileResp{},
		DropMapOutputsReq{}, DropMapOutputsResp{},
		EvictMapOutputsReq{}, EvictMapOutputsResp{},
		DigestReq{}, DigestResp{},
		PingReq{}, PingResp{},
	} {
		wire.Register(m)
	}
}
