package dmr

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rcmp/internal/dfs"
	"rcmp/internal/lineage"
)

// RunJob executes one job run (initial, restart, or recomputation) to
// completion and returns its report. A worker death during the run cancels
// it and yields a *DataLossError, which the driver answers with a
// recomputation cascade. Only one run may be active at a time.
func (m *Master) RunJob(spec JobSpec) (*JobReport, error) {
	if spec.NumReducers <= 0 {
		return nil, fmt.Errorf("dmr: job %d: NumReducers=%d", spec.ID, spec.NumReducers)
	}
	if spec.OutputRepl <= 0 {
		spec.OutputRepl = 1
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errors.New("dmr: master closed")
	}
	if m.cancel != nil {
		m.mu.Unlock()
		return nil, errors.New("dmr: a job run is already active")
	}
	if len(m.aliveLocked()) == 0 {
		m.mu.Unlock()
		return nil, errors.New("dmr: no live workers")
	}
	cancel := make(chan struct{})
	m.cancel = cancel
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		if m.cancel != nil { // not closed by a death
			m.cancel = nil
		}
		m.mu.Unlock()
	}()

	var report *JobReport
	var err error
	if spec.Recompute == nil {
		report, err = m.runInitial(spec, cancel)
	} else {
		report, err = m.runRecompute(spec, cancel)
	}
	if err != nil {
		// A task error may be the first symptom of a death the monitor has
		// not yet declared. Give detection a chance so the driver sees a
		// DataLossError rather than a transport error.
		if errors.Is(err, errCancelled) || m.waitCancelled(cancel, 2*m.cfg.Timing.DetectionTimeout) {
			m.mu.Lock()
			v := m.victimsLocked()
			m.mu.Unlock()
			return nil, &DataLossError{Victims: v}
		}
		return nil, err
	}
	select {
	case <-cancel: // death raced with the last task: treat the run as lost
		m.mu.Lock()
		v := m.victimsLocked()
		m.mu.Unlock()
		return nil, &DataLossError{Victims: v}
	default:
	}
	return report, nil
}

func (m *Master) waitCancelled(cancel <-chan struct{}, d time.Duration) bool {
	select {
	case <-cancel:
		return true
	case <-time.After(d):
		return false
	}
}

// runTasks runs fn(i) for i in [0,n) concurrently and returns the first
// error. Concurrency is bounded by worker slots, not here.
func runTasks(n int, fn func(i int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// placeMapper picks the worker for a mapper over input block holders:
// a holder with a free slot (data-local), else any worker with a free slot
// (remote read — the recomputation hot-spot path), else block on the first
// live holder. The returned worker's map slot is held; release when done.
func (m *Master) placeMapper(holders []int, rr int, cancel <-chan struct{}) (*workerInfo, error) {
	var localCandidates []*workerInfo
	for _, id := range holders {
		if w := m.workerIfAlive(id); w != nil {
			localCandidates = append(localCandidates, w)
		}
	}
	for _, w := range localCandidates {
		select {
		case w.mapSlots <- struct{}{}:
			return w, nil
		default:
		}
	}
	// No local slot free: spill to any live worker with capacity.
	m.mu.Lock()
	alive := m.aliveLocked()
	var spill []*workerInfo
	for i := range alive {
		spill = append(spill, m.workers[alive[(i+rr)%len(alive)]])
	}
	m.mu.Unlock()
	for _, w := range spill {
		select {
		case w.mapSlots <- struct{}{}:
			return w, nil
		default:
		}
	}
	// Everything busy: wait for the preferred local holder (or any worker
	// when the data is entirely remote).
	wait := spill
	if len(localCandidates) > 0 {
		wait = localCandidates
	}
	if len(wait) == 0 {
		return nil, errors.New("dmr: no live workers to place mapper")
	}
	if err := acquire(wait[0].mapSlots, cancel); err != nil {
		return nil, err
	}
	return wait[0], nil
}

// mapTaskResult is one completed mapper in lineage terms.
type mapTaskResult struct {
	meta       lineage.MapperMeta
	remoteRead bool
}

// mapPhaseStats aggregates completed-mapper durations for the speculation
// threshold, plus the speculation counters of one run's map phase.
type mapPhaseStats struct {
	mu           sync.Mutex
	n            int
	total        time.Duration
	specLaunched int
	specWasted   int
}

func (s *mapPhaseStats) record(d time.Duration) {
	s.mu.Lock()
	s.n++
	s.total += d
	s.mu.Unlock()
}

// threshold returns factor times the mean completed-mapper duration; not
// ok until enough mappers completed to trust the mean (the paper's
// speculation also waits for completed-task statistics).
func (s *mapPhaseStats) threshold(factor float64) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 3 {
		return 0, false
	}
	return time.Duration(factor * float64(s.total) / float64(s.n)), true
}

// tryPlaceDuplicate grabs a free map slot on any live worker other than
// exclude, without blocking. Returns nil when nothing is free — then the
// straggler just runs to completion, like Hadoop with full slots.
func (m *Master) tryPlaceDuplicate(exclude int) *workerInfo {
	m.mu.Lock()
	alive := m.aliveLocked()
	var cands []*workerInfo
	for _, id := range alive {
		if id != exclude {
			cands = append(cands, m.workers[id])
		}
	}
	m.mu.Unlock()
	for _, w := range cands {
		select {
		case w.mapSlots <- struct{}{}:
			return w
		default:
		}
	}
	return nil
}

// runMapPhase executes the given mapper descriptors and returns their
// completed metadata, optionally duplicating stragglers (speculation).
func (m *Master) runMapPhase(spec JobSpec, descs []lineage.MapperMeta, cancel <-chan struct{}) ([]mapTaskResult, *mapPhaseStats, error) {
	// Snapshot block locations up front: fs access stays single-threaded.
	holders := make([][]int, len(descs))
	if err := m.WithFS(func(fs *dfs.FS) error {
		for i, d := range descs {
			locs := fs.BlockLocations(spec.InFile, d.InputPartition)
			if d.InputBlock >= len(locs) || len(locs[d.InputBlock]) == 0 {
				return fmt.Errorf("dmr: job %d mapper %d: input %s/p%d/b%d has no live replica",
					spec.ID, d.Index, spec.InFile, d.InputPartition, d.InputBlock)
			}
			holders[i] = locs[d.InputBlock]
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}

	factor := spec.SpeculationFactor
	if factor <= 0 {
		factor = 1.5
	}
	tick := m.cfg.Timing.progressTick()
	stats := &mapPhaseStats{}

	results := make([]mapTaskResult, len(descs))
	err := runTasks(len(descs), func(i int) error {
		primary, err := m.placeMapper(holders[i], i, cancel)
		if err != nil {
			return err
		}
		type outcome struct {
			w    *workerInfo
			resp RunMapperResp
			err  error
		}
		ch := make(chan outcome, 2) // buffered: the losing attempt must not block
		launch := func(w *workerInfo) {
			go func() {
				defer func() { <-w.mapSlots }()
				resp, err := m.peers.Call(w.addr, RunMapperReq{
					Job:         spec.ID,
					Mapper:      descs[i].Index,
					InFile:      spec.InFile,
					Part:        descs[i].InputPartition,
					Block:       descs[i].InputBlock,
					NumReducers: spec.NumReducers,
					Holders:     m.aliveAddrs(holders[i]),
				}, m.cfg.Timing.TaskTimeout)
				if err != nil {
					ch <- outcome{w: w, err: err}
					return
				}
				ch <- outcome{w: w, resp: resp.(RunMapperResp)}
			}()
		}
		start := time.Now()
		launch(primary)
		outstanding, speculated := 1, false
		timer := time.NewTicker(tick)
		defer timer.Stop()
		for {
			select {
			case o := <-ch:
				if o.err != nil {
					outstanding--
					if outstanding == 0 {
						return fmt.Errorf("dmr: job %d mapper %d on worker %d: %w",
							spec.ID, descs[i].Index, o.w.id, o.err)
					}
					continue // the other attempt may still win
				}
				stats.record(time.Since(start))
				if speculated && o.w == primary {
					// The duplicate provided no benefit.
					stats.mu.Lock()
					stats.specWasted++
					stats.mu.Unlock()
				}
				meta := descs[i]
				meta.Node = o.w.id
				meta.OutputBytes = o.resp.OutputBytes
				results[i] = mapTaskResult{meta: meta, remoteRead: o.resp.RemoteRead}
				return nil
			case <-timer.C:
				if !spec.Speculation || speculated {
					continue
				}
				th, ok := stats.threshold(factor)
				if !ok || time.Since(start) <= th {
					continue
				}
				if dup := m.tryPlaceDuplicate(primary.id); dup != nil {
					speculated = true
					outstanding++
					stats.mu.Lock()
					stats.specLaunched++
					stats.mu.Unlock()
					launch(dup)
				}
			case <-cancel:
				return errCancelled
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return results, stats, nil
}

// reducePlacement is the precomputed placement of one reducer task (whole
// reducer, or one split).
type reducePlacement struct {
	reducer int
	split   int
	splits  int
	worker  *workerInfo
	set     []int // replica node set (worker first)

	// scatterNodes/scatterAddrs, when set, spread the task's output blocks
	// round-robin over these nodes instead of writing locally (Section
	// IV-B2). Only whole (unsplit) reducers scatter.
	scatterNodes []int
	scatterAddrs []string
}

// planReduce precomputes writers and replica sets sequentially (the FS
// placement cursor is not goroutine-safe).
func (m *Master) planReduce(runs []reduceRun, repl int, scatter bool) ([]reducePlacement, error) {
	m.mu.Lock()
	alive := m.aliveLocked()
	m.mu.Unlock()
	if len(alive) == 0 {
		return nil, errors.New("dmr: no live workers for reduce phase")
	}
	if repl > len(alive) {
		repl = len(alive)
	}
	var scatterAddrs []string
	if scatter {
		scatterAddrs = m.aliveAddrs(alive)
		if len(scatterAddrs) != len(alive) {
			return nil, errors.New("dmr: scatter target died during planning")
		}
	}
	var out []reducePlacement
	for _, rr := range runs {
		for s := 0; s < rr.splits; s++ {
			id := alive[(rr.reducer+s)%len(alive)]
			w := m.workerIfAlive(id)
			if w == nil {
				return nil, fmt.Errorf("dmr: reduce target %d died during planning", id)
			}
			p := reducePlacement{reducer: rr.reducer, split: s, splits: rr.splits, worker: w}
			if scatter && rr.splits == 1 {
				p.scatterNodes = alive
				p.scatterAddrs = scatterAddrs
				p.set = []int{id} // unused for blocks; kept for invariants
			} else {
				_ = m.WithFS(func(fs *dfs.FS) error { p.set = fs.PlanReplicas(id, repl, alive); return nil })
			}
			out = append(out, p)
		}
	}
	return out, nil
}

type reduceRun struct {
	reducer int
	splits  int
}

// reduceOutcome is one reduce task's written blocks.
type reduceOutcome struct {
	place  reducePlacement
	sizes  []int64
	nBytes int64
}

// runReducePhase executes the placed reduce tasks against the given shuffle
// sources and returns per-task outcomes.
func (m *Master) runReducePhase(spec JobSpec, places []reducePlacement, sources []MapSrc, cancel <-chan struct{}) ([]reduceOutcome, error) {
	outcomes := make([]reduceOutcome, len(places))
	err := runTasks(len(places), func(i int) error {
		p := places[i]
		if err := acquire(p.worker.reduceSlots, cancel); err != nil {
			return err
		}
		defer func() { <-p.worker.reduceSlots }()
		carve := spec.CarveRecords
		if p.splits > 1 {
			carve = 0 // one block per split
		}
		var replicaAddrs []string
		if p.scatterAddrs == nil {
			for _, id := range p.set[1:] {
				if w := m.workerIfAlive(id); w != nil {
					replicaAddrs = append(replicaAddrs, w.addr)
				} else {
					return fmt.Errorf("dmr: replica target %d died", id)
				}
			}
		}
		resp, err := m.peers.Call(p.worker.addr, RunReducerReq{
			Job:          spec.ID,
			Reducer:      p.reducer,
			Split:        p.split,
			Splits:       p.splits,
			NumReducers:  spec.NumReducers,
			Sources:      sources,
			OutFile:      spec.OutFile,
			OutPart:      p.reducer,
			OutBlock:     p.split,
			CarveRecords: carve,
			ReplicaAddrs: replicaAddrs,
			ScatterAddrs: p.scatterAddrs,
		}, m.cfg.Timing.TaskTimeout)
		if err != nil {
			return fmt.Errorf("dmr: job %d reducer %d.%d on worker %d: %w", spec.ID, p.reducer, p.split, p.worker.id, err)
		}
		r := resp.(RunReducerResp)
		outcomes[i] = reduceOutcome{place: p, sizes: r.BlockRecords, nBytes: r.OutputBytes}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outcomes, nil
}

// commitReduceOutcomes writes DFS metadata and lineage-style reducer metas
// for a set of completed reduce tasks, grouping split outcomes by reducer.
func (m *Master) commitReduceOutcomes(spec JobSpec, outcomes []reduceOutcome) ([]lineage.ReducerMeta, error) {
	byReducer := make(map[int][]reduceOutcome)
	var order []int
	for _, o := range outcomes {
		if _, ok := byReducer[o.place.reducer]; !ok {
			order = append(order, o.place.reducer)
		}
		byReducer[o.place.reducer] = append(byReducer[o.place.reducer], o)
	}
	var metas []lineage.ReducerMeta
	for _, red := range order {
		group := byReducer[red]
		// Order blocks by split (each split wrote OutBlock == split; an
		// unsplit reducer wrote blocks 0..n-1 in one outcome).
		for i := 1; i < len(group); i++ {
			for j := i; j > 0 && group[j-1].place.split > group[j].place.split; j-- {
				group[j-1], group[j] = group[j], group[j-1]
			}
		}
		var sizes []int64
		var sets [][]int
		var nodes []int
		var bytes int64
		for _, o := range group {
			for i := range o.sizes {
				if o.place.scatterNodes != nil {
					// Mirror the worker's block rotation exactly.
					sets = append(sets, []int{o.place.scatterNodes[i%len(o.place.scatterNodes)]})
				} else {
					sets = append(sets, o.place.set)
				}
			}
			sizes = append(sizes, o.sizes...)
			nodes = append(nodes, o.place.worker.id)
			bytes += o.nBytes
		}
		if err := m.WithFS(func(fs *dfs.FS) error {
			_, err := fs.SetPartitionBlocks(spec.OutFile, red, sizes, sets)
			return err
		}); err != nil {
			return nil, err
		}
		metas = append(metas, lineage.ReducerMeta{Index: red, OutputBytes: bytes, Nodes: nodes})
	}
	return metas, nil
}

// runInitial executes a full job run (initial submission or post-failure
// restart): every input block gets a mapper, every reducer runs whole.
func (m *Master) runInitial(spec JobSpec, cancel <-chan struct{}) (*JobReport, error) {
	// Restarting rewrites the output from scratch.
	m.DropFileEverywhere(spec.OutFile)
	var descs []lineage.MapperMeta
	if err := m.WithFS(func(fs *dfs.FS) error {
		in := fs.File(spec.InFile)
		if in == nil {
			return fmt.Errorf("dmr: job %d input %q missing", spec.ID, spec.InFile)
		}
		if _, err := fs.Create(spec.OutFile, spec.NumReducers); err != nil {
			return err
		}
		for _, p := range in.Partitions {
			for b, blk := range p.Blocks {
				descs = append(descs, lineage.MapperMeta{
					Index: len(descs), InputPartition: p.Index, InputBlock: b, InputBytes: blk.Size,
				})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	mapResults, mapStats, err := m.runMapPhase(spec, descs, cancel)
	if err != nil {
		return nil, err
	}

	report := &JobReport{SpeculativeLaunched: mapStats.specLaunched, SpeculativeWasted: mapStats.specWasted}
	sources := make([]MapSrc, len(mapResults))
	for i, r := range mapResults {
		report.Mappers = append(report.Mappers, r.meta)
		if r.remoteRead {
			report.RemoteReads++
		}
		w := m.workerIfAlive(r.meta.Node)
		if w == nil {
			return nil, errCancelled // mapper's node died right after finishing
		}
		sources[i] = MapSrc{Part: r.meta.InputPartition, Block: r.meta.InputBlock, Addr: w.addr}
	}

	runs := make([]reduceRun, spec.NumReducers)
	for r := range runs {
		runs[r] = reduceRun{reducer: r, splits: 1}
	}
	places, err := m.planReduce(runs, spec.OutputRepl, false)
	if err != nil {
		return nil, err
	}
	outcomes, err := m.runReducePhase(spec, places, sources, cancel)
	if err != nil {
		return nil, err
	}
	report.Reducers, err = m.commitReduceOutcomes(spec, outcomes)
	if err != nil {
		return nil, err
	}
	return report, nil
}

// runRecompute executes a recomputation run: only the tagged mappers
// re-execute (others' persisted outputs are reused in place) and only the
// tagged reducer outputs are regenerated, possibly split.
func (m *Master) runRecompute(spec JobSpec, cancel <-chan struct{}) (*JobReport, error) {
	rc := spec.Recompute
	// The regenerated partitions are rewritten; drop their stale blocks.
	for _, rr := range rc.Reducers {
		m.broadcast(DropPartitionReq{File: spec.OutFile, Part: rr.Reducer})
	}

	var descs []lineage.MapperMeta
	for _, idx := range rc.Mappers {
		if idx < 0 || idx >= len(rc.PrevMappers) {
			return nil, fmt.Errorf("dmr: job %d: recompute mapper %d outside table of %d", spec.ID, idx, len(rc.PrevMappers))
		}
		descs = append(descs, rc.PrevMappers[idx])
	}
	mapResults, mapStats, err := m.runMapPhase(spec, descs, cancel)
	if err != nil {
		return nil, err
	}

	report := &JobReport{SpeculativeLaunched: mapStats.specLaunched, SpeculativeWasted: mapStats.specWasted}
	newNode := make(map[int]int, len(mapResults))
	for _, r := range mapResults {
		report.Mappers = append(report.Mappers, r.meta)
		if r.remoteRead {
			report.RemoteReads++
		}
		newNode[r.meta.Index] = r.meta.Node
	}

	// Shuffle sources: every mapper of the job — re-executed ones at their
	// new nodes, the rest reused from the nodes that persisted them.
	sources := make([]MapSrc, 0, len(rc.PrevMappers))
	for _, pm := range rc.PrevMappers {
		node := pm.Node
		if n, ok := newNode[pm.Index]; ok {
			node = n
		}
		w := m.workerIfAlive(node)
		if w == nil {
			return nil, fmt.Errorf("dmr: job %d: map output %d needed from dead worker %d (planner should have re-run it)",
				spec.ID, pm.Index, node)
		}
		sources = append(sources, MapSrc{Part: pm.InputPartition, Block: pm.InputBlock, Addr: w.addr})
	}

	runs := make([]reduceRun, len(rc.Reducers))
	for i, rr := range rc.Reducers {
		splits := rr.Splits
		if splits < 1 {
			splits = 1
		}
		runs[i] = reduceRun{reducer: rr.Reducer, splits: splits}
	}
	places, err := m.planReduce(runs, spec.OutputRepl, spec.Recompute.Scatter)
	if err != nil {
		return nil, err
	}
	outcomes, err := m.runReducePhase(spec, places, sources, cancel)
	if err != nil {
		return nil, err
	}
	report.Reducers, err = m.commitReduceOutcomes(spec, outcomes)
	if err != nil {
		return nil, err
	}
	return report, nil
}
