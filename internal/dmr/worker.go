package dmr

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"rcmp/internal/core"
	"rcmp/internal/wire"
	"rcmp/internal/workload"
)

// Timing bundles the liveness and transport delays of a deployment. Tests
// shrink these so a kill-detect-recover cycle takes milliseconds; the
// paper's clusters used a 30 s detection timeout.
type Timing struct {
	HeartbeatInterval time.Duration // worker -> master cadence
	DetectionTimeout  time.Duration // master declares a silent worker dead
	DialTimeout       time.Duration
	CallTimeout       time.Duration // per-RPC deadline for control calls
	TaskTimeout       time.Duration // per-task deadline (map/reduce RPCs)
}

// DefaultTiming returns production-ish defaults (detection 30 s, like the
// paper's configuration).
func DefaultTiming() Timing {
	return Timing{
		HeartbeatInterval: 3 * time.Second,
		DetectionTimeout:  30 * time.Second,
		DialTimeout:       5 * time.Second,
		CallTimeout:       30 * time.Second,
		TaskTimeout:       10 * time.Minute,
	}
}

// TestTiming returns millisecond-scale settings for tests and examples.
func TestTiming() Timing {
	return Timing{
		HeartbeatInterval: 10 * time.Millisecond,
		DetectionTimeout:  150 * time.Millisecond,
		DialTimeout:       time.Second,
		CallTimeout:       5 * time.Second,
		TaskTimeout:       time.Minute,
	}
}

func (t Timing) withDefaults() Timing {
	d := DefaultTiming()
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = d.HeartbeatInterval
	}
	if t.DetectionTimeout <= 0 {
		t.DetectionTimeout = d.DetectionTimeout
	}
	if t.DialTimeout <= 0 {
		t.DialTimeout = d.DialTimeout
	}
	if t.CallTimeout <= 0 {
		t.CallTimeout = d.CallTimeout
	}
	if t.TaskTimeout <= 0 {
		t.TaskTimeout = d.TaskTimeout
	}
	return t
}

// Validate rejects timing combinations that break liveness detection. A
// detection timeout at or below the heartbeat interval declares every
// worker dead before its second heartbeat can arrive — an aggressively
// scaled chaos or cross-validation config must fail loudly here rather
// than kill the whole cluster at startup. Callers validate after
// withDefaults so partially specified configs are judged on their
// effective values.
func (t Timing) Validate() error {
	if t.DetectionTimeout <= t.HeartbeatInterval {
		return fmt.Errorf("dmr: DetectionTimeout (%v) must exceed HeartbeatInterval (%v)",
			t.DetectionTimeout, t.HeartbeatInterval)
	}
	return nil
}

// monitorTick is the master's liveness-scan period: the heartbeat cadence,
// tightened to a quarter of the detection window so a scan always lands
// inside it, floored at 1ms so millisecond-scale test timings cannot spin
// the monitor.
func (t Timing) monitorTick() time.Duration {
	tick := t.HeartbeatInterval
	if limit := t.DetectionTimeout / 4; tick > limit {
		tick = limit
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	return tick
}

// progressTick paces the job-runner's speculation progress checks at half
// the heartbeat cadence (fresher than liveness, since stragglers are judged
// on task runtimes), with the same 1ms spin floor.
func (t Timing) progressTick() time.Duration {
	tick := t.HeartbeatInterval / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	return tick
}

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	ID         int    // dense node ID, 0..N-1
	MasterAddr string // master's control address
	ListenAddr string // address to bind the data/task server ("127.0.0.1:0" for tests)
	Timing     Timing

	// TaskDelay makes every map/reduce task on this worker sleep first —
	// a straggler knob for tests and demos of speculative execution (a
	// slow disk or overloaded node in the paper's terms).
	TaskDelay time.Duration

	// Chaos, when non-nil, routes the worker's listener and every outbound
	// dial through the fault injector under the endpoint name "w<ID>".
	Chaos *wire.Chaos
	// Retry bounds transport-error re-attempts on the worker's peer pool.
	// The zero value keeps the historical single-shot behavior.
	Retry wire.RetryPolicy
}

// Worker is one compute-plus-storage node: it runs tasks, stores blocks and
// persisted map outputs, serves peer fetches, and heartbeats the master.
type Worker struct {
	cfg    WorkerConfig
	store  *store
	server *wire.Server
	peers  *wire.Pool

	// The master client is a re-dialable slot, not a permanent handle: a
	// mid-call send fault poisons a wire.Client forever, and a worker whose
	// heartbeats all land on a poisoned client is silently dead to the
	// master while perfectly healthy. mcMu guards the slot; a discarded
	// client is re-dialed with capped exponential backoff.
	mcMu       sync.Mutex
	master     *wire.Client
	hbBackoff  time.Duration
	nextRedial time.Time

	mu        sync.Mutex
	killed    bool
	stopHB    chan struct{}
	hbStopped sync.WaitGroup

	// counters for observability and tests
	remoteReads int
	tasksRun    int
}

// StartWorker binds the worker's server, registers with the master, and
// starts heartbeating. The returned worker runs until Kill or Shutdown.
func StartWorker(cfg WorkerConfig) (*Worker, error) {
	cfg.Timing = cfg.Timing.withDefaults()
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("dmr: worker %d listen: %w", cfg.ID, err)
	}
	if cfg.Chaos != nil {
		ln = cfg.Chaos.WrapListener(ln, fmt.Sprintf("w%d", cfg.ID))
	}
	w := &Worker{
		cfg:    cfg,
		store:  newStore(),
		stopHB: make(chan struct{}),
	}
	w.peers = wire.NewPoolOpts(cfg.Timing.DialTimeout, w.poolOpts())
	w.server = wire.NewServer(ln, w.handle)

	w.master, err = wire.DialOpts(cfg.MasterAddr, cfg.Timing.DialTimeout, w.poolOpts())
	if err != nil {
		w.server.Close()
		return nil, fmt.Errorf("dmr: worker %d dial master: %w", cfg.ID, err)
	}
	if _, err := w.master.Call(RegisterReq{Worker: cfg.ID, Addr: w.Addr()}, cfg.Timing.CallTimeout); err != nil {
		w.server.Close()
		w.master.Close()
		return nil, fmt.Errorf("dmr: worker %d register: %w", cfg.ID, err)
	}
	w.hbStopped.Add(1)
	go w.heartbeatLoop()
	return w, nil
}

func (w *Worker) poolOpts() wire.PoolOptions {
	return wire.PoolOptions{
		Chaos: w.cfg.Chaos,
		Self:  fmt.Sprintf("w%d", w.cfg.ID),
		Retry: w.cfg.Retry,
	}
}

// Addr returns the worker's data/task address.
func (w *Worker) Addr() string { return w.server.Addr() }

// ID returns the worker's node ID.
func (w *Worker) ID() int { return w.cfg.ID }

func (w *Worker) heartbeatLoop() {
	defer w.hbStopped.Done()
	t := time.NewTicker(w.cfg.Timing.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopHB:
			return
		case <-t.C:
			w.heartbeat()
		}
	}
}

// heartbeat sends one liveness refresh. A transport failure discards the
// client (a poisoned gob stream can never carry another call) so a later
// tick re-dials; an unreachable master is still not fatal — it declares us
// dead on its own timeout, which is the detection path under test.
func (w *Worker) heartbeat() {
	cl := w.masterClient()
	if cl == nil {
		return // re-dial backoff in force, or master unreachable
	}
	_, err := cl.Call(HeartbeatReq{Worker: w.cfg.ID}, w.cfg.Timing.CallTimeout)
	if err != nil && wire.IsTransportError(err) {
		w.discardMaster(cl)
	}
}

// masterClient returns the live master client, re-dialing if the slot is
// empty and the backoff window has passed. Returns nil while backing off.
func (w *Worker) masterClient() *wire.Client {
	w.mcMu.Lock()
	defer w.mcMu.Unlock()
	if w.master != nil {
		return w.master
	}
	if time.Now().Before(w.nextRedial) {
		return nil
	}
	cl, err := wire.DialOpts(w.cfg.MasterAddr, w.cfg.Timing.DialTimeout, w.poolOpts())
	if err != nil {
		w.bumpHBBackoffLocked()
		return nil
	}
	w.master = cl
	w.hbBackoff = 0
	return cl
}

// discardMaster closes a failed client and vacates the slot (unless a
// newer client already replaced it), arming the re-dial backoff.
func (w *Worker) discardMaster(cl *wire.Client) {
	cl.Close()
	w.mcMu.Lock()
	if w.master == cl {
		w.master = nil
		w.bumpHBBackoffLocked()
	}
	w.mcMu.Unlock()
}

// bumpHBBackoffLocked doubles the re-dial backoff, starting at half a
// heartbeat interval and capped at half the detection timeout so a worker
// that can reconnect always does so with detection headroom to spare.
func (w *Worker) bumpHBBackoffLocked() {
	if w.hbBackoff <= 0 {
		w.hbBackoff = w.cfg.Timing.HeartbeatInterval / 2
		if w.hbBackoff < time.Millisecond {
			w.hbBackoff = time.Millisecond
		}
	} else {
		w.hbBackoff *= 2
	}
	if limit := w.cfg.Timing.DetectionTimeout / 2; w.hbBackoff > limit {
		w.hbBackoff = limit
	}
	w.nextRedial = time.Now().Add(w.hbBackoff)
}

// Kill simulates node death: heartbeats stop and the data/task server goes
// away, so stored blocks and persisted map outputs become unreachable. This
// is the TaskTracker+DataNode kill of Section V-A.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.killed {
		w.mu.Unlock()
		return
	}
	w.killed = true
	close(w.stopHB)
	w.mu.Unlock()
	w.hbStopped.Wait()
	w.server.Close()
	w.peers.Close()
	w.mcMu.Lock()
	if w.master != nil {
		w.master.Close()
	}
	w.mcMu.Unlock()
}

// Shutdown is a graceful Kill (same teardown; named for intent at call sites).
func (w *Worker) Shutdown() { w.Kill() }

// StoreStats snapshots the worker's storage (tests, observability).
func (w *Worker) StoreStats() Stats { return w.store.Stats() }

// RemoteReads returns how many mapper inputs this worker fetched from peers
// (each one is a would-be hot-spot access during recomputation).
func (w *Worker) RemoteReads() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.remoteReads
}

// TasksRun returns how many map/reduce tasks this worker executed.
func (w *Worker) TasksRun() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tasksRun
}

// handle dispatches one request on the worker's server.
func (w *Worker) handle(_ net.Addr, req any) (any, error) {
	switch r := req.(type) {
	case PingReq:
		return PingResp{}, nil
	case PutBlockReq:
		w.store.PutBlock(r.File, r.Part, r.Block, r.Records)
		return PutBlockResp{}, nil
	case FetchBlockReq:
		rows, err := w.store.GetBlock(r.File, r.Part, r.Block)
		if err != nil {
			return nil, err
		}
		return FetchBlockResp{Records: rows}, nil
	case FetchMapOutReq:
		rows, err := w.store.MapOutputSlice(r.Job, r.Part, r.Block, r.Reducer, r.Split, r.Splits)
		if err != nil {
			return nil, err
		}
		return FetchMapOutResp{Records: rows}, nil
	case DropPartitionReq:
		w.store.DropPartition(r.File, r.Part)
		return DropPartitionResp{}, nil
	case DropFileReq:
		w.store.DropFile(r.File)
		return DropFileResp{}, nil
	case DropMapOutputsReq:
		w.store.DropMapOutputs(r.Jobs)
		return DropMapOutputsResp{}, nil
	case EvictMapOutputsReq:
		for _, ref := range r.Refs {
			w.store.EvictMapOutput(ref.Job, ref.Part, ref.Block)
		}
		return EvictMapOutputsResp{}, nil
	case DigestReq:
		d, err := w.store.BlockDigest(r.File, r.Part, r.Block)
		if err != nil {
			return nil, err
		}
		return DigestResp{Digest: d}, nil
	case RunMapperReq:
		return w.runMapper(r)
	case RunReducerReq:
		return w.runReducer(r)
	default:
		return nil, fmt.Errorf("dmr: worker %d: unknown request %T", w.cfg.ID, req)
	}
}

// readInput returns the mapper's input block, fetching from a peer when it
// is not stored locally (a data-non-local task).
func (w *Worker) readInput(r RunMapperReq) ([]workload.Record, bool, error) {
	if w.store.HasBlock(r.InFile, r.Part, r.Block) {
		rows, err := w.store.GetBlock(r.InFile, r.Part, r.Block)
		return rows, false, err
	}
	var lastErr error
	for _, addr := range r.Holders {
		if addr == w.Addr() {
			continue // the master thought we hold it but we don't; skip
		}
		resp, err := w.peers.Call(addr, FetchBlockReq{File: r.InFile, Part: r.Part, Block: r.Block}, w.cfg.Timing.CallTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		return resp.(FetchBlockResp).Records, true, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dmr: no holders listed")
	}
	return nil, false, fmt.Errorf("dmr: worker %d: input %s/p%d/b%d unreadable: %w",
		w.cfg.ID, r.InFile, r.Part, r.Block, lastErr)
}

func reducerOfRecord(r workload.Record, numReducers int) int {
	return core.ReducerOf(core.HashKey(workload.KeyBytes(r.Key)), numReducers)
}

func splitOfRecord(r workload.Record, splits int) int {
	return core.SplitOf(core.HashKey(workload.KeyBytes(r.Key)), splits)
}

// runMapper executes one mapper task.
func (w *Worker) runMapper(r RunMapperReq) (any, error) {
	if w.cfg.TaskDelay > 0 {
		time.Sleep(w.cfg.TaskDelay)
	}
	rows, remote, err := w.readInput(r)
	if err != nil {
		return nil, err
	}
	buckets := make([][]workload.Record, r.NumReducers)
	var outBytes int64
	for _, rec := range rows {
		err := workload.Map(rec, func(o workload.Record) {
			red := reducerOfRecord(o, r.NumReducers)
			buckets[red] = append(buckets[red], o)
			outBytes += int64(8 + len(o.Value))
		})
		if err != nil {
			return nil, fmt.Errorf("dmr: worker %d mapper %d/%d: %w", w.cfg.ID, r.Job, r.Mapper, err)
		}
	}
	w.store.PutMapOutput(r.Job, r.Part, r.Block, buckets)

	counts := make([]int64, r.NumReducers)
	for i, b := range buckets {
		counts[i] = int64(len(b))
	}
	w.mu.Lock()
	w.tasksRun++
	if remote {
		w.remoteReads++
	}
	w.mu.Unlock()
	return RunMapperResp{PerReducerRecords: counts, OutputBytes: outBytes, RemoteRead: remote}, nil
}

// runReducer executes one reducer task (whole or one split).
func (w *Worker) runReducer(r RunReducerReq) (any, error) {
	if w.cfg.TaskDelay > 0 {
		time.Sleep(w.cfg.TaskDelay)
	}
	// Shuffle: pull this (reducer, split)'s records from every map source.
	grouped := make(map[uint64][][]byte)
	var keys []uint64
	ingest := func(rows []workload.Record) {
		for _, rec := range rows {
			if _, ok := grouped[rec.Key]; !ok {
				keys = append(keys, rec.Key)
			}
			grouped[rec.Key] = append(grouped[rec.Key], rec.Value)
		}
	}
	for _, src := range r.Sources {
		if src.Addr == w.Addr() {
			rows, err := w.store.MapOutputSlice(r.Job, src.Part, src.Block, r.Reducer, r.Split, r.Splits)
			if err != nil {
				return nil, err
			}
			ingest(rows)
			continue
		}
		resp, err := w.peers.Call(src.Addr, FetchMapOutReq{
			Job: r.Job, Part: src.Part, Block: src.Block, Reducer: r.Reducer, Split: r.Split, Splits: r.Splits,
		}, w.cfg.Timing.CallTimeout)
		if err != nil {
			return nil, fmt.Errorf("dmr: worker %d reducer %d.%d: shuffle from %s map output p%d/b%d: %w",
				w.cfg.ID, r.Reducer, r.Split, src.Addr, src.Part, src.Block, err)
		}
		ingest(resp.(FetchMapOutResp).Records)
	}

	// Reduce in deterministic key order.
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []workload.Record
	var outBytes int64
	for _, k := range keys {
		err := workload.Reduce(k, grouped[k], func(rec workload.Record) {
			out = append(out, rec)
			outBytes += int64(8 + len(rec.Value))
		})
		if err != nil {
			return nil, fmt.Errorf("dmr: worker %d reducer %d.%d: %w", w.cfg.ID, r.Reducer, r.Split, err)
		}
	}

	// Carve into output blocks: one per split, or CarveRecords-sized chunks
	// for a whole reducer so the next job's map phase has multiple tasks.
	var blocks [][]workload.Record
	if r.Splits > 1 || r.CarveRecords <= 0 {
		blocks = [][]workload.Record{out}
	} else {
		for len(out) > r.CarveRecords {
			blocks = append(blocks, out[:r.CarveRecords])
			out = out[r.CarveRecords:]
		}
		blocks = append(blocks, out) // possibly empty: empty partitions still get a block
	}

	// Store blocks: locally plus replica pushes, or scattered over the
	// provided node rotation (Section IV-B2 hot-spot mitigation).
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		idx := r.OutBlock + i
		sizes[i] = int64(len(b))
		if len(r.ScatterAddrs) > 0 {
			target := r.ScatterAddrs[i%len(r.ScatterAddrs)]
			if target == w.Addr() {
				w.store.PutBlock(r.OutFile, r.OutPart, idx, b)
				continue
			}
			if _, err := w.peers.Call(target, PutBlockReq{File: r.OutFile, Part: r.OutPart, Block: idx, Records: b}, w.cfg.Timing.CallTimeout); err != nil {
				return nil, fmt.Errorf("dmr: worker %d reducer %d.%d: scatter to %s: %w",
					w.cfg.ID, r.Reducer, r.Split, target, err)
			}
			continue
		}
		w.store.PutBlock(r.OutFile, r.OutPart, idx, b)
		for _, addr := range r.ReplicaAddrs {
			if addr == w.Addr() {
				continue
			}
			if _, err := w.peers.Call(addr, PutBlockReq{File: r.OutFile, Part: r.OutPart, Block: idx, Records: b}, w.cfg.Timing.CallTimeout); err != nil {
				return nil, fmt.Errorf("dmr: worker %d reducer %d.%d: replicate to %s: %w",
					w.cfg.ID, r.Reducer, r.Split, addr, err)
			}
		}
	}
	w.mu.Lock()
	w.tasksRun++
	w.mu.Unlock()
	return RunReducerResp{BlockRecords: sizes, OutputBytes: outBytes}, nil
}
