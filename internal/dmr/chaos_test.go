package dmr

import (
	"strings"
	"testing"
	"time"

	"rcmp/internal/wire"
)

// startChaosCluster is startCluster with a fault injector interposed on
// every connection: the master serves as endpoint "master", worker i as
// "w<i>", matching the names the dmr runtime registers.
func startChaosCluster(t *testing.T, n, slots, blockRecords int, chaos *wire.Chaos, retry wire.RetryPolicy) *cluster {
	t.Helper()
	m, err := StartMaster(MasterConfig{SlotsPerWorker: slots, Timing: TestTiming(), Chaos: chaos, Retry: retry}, blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{m: m}
	t.Cleanup(func() {
		chaos.HealAll()
		for _, w := range c.workers {
			w.Kill()
		}
		m.Close()
	})
	for i := 0; i < n; i++ {
		w, err := StartWorker(WorkerConfig{ID: i, MasterAddr: m.Addr(), Timing: TestTiming(), Chaos: chaos, Retry: retry})
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
	if got := len(m.AliveWorkers()); got != n {
		t.Fatalf("alive workers = %d, want %d", got, n)
	}
	return c
}

func TestTimingValidate(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name   string
		timing Timing
		ok     bool
	}{
		{"zero gets defaults", Timing{}, true},
		{"test timing", TestTiming(), true},
		{"production timing", DefaultTiming(), true},
		{"detection equals heartbeat", Timing{HeartbeatInterval: 10 * ms, DetectionTimeout: 10 * ms}, false},
		{"detection below heartbeat", Timing{HeartbeatInterval: 50 * ms, DetectionTimeout: 10 * ms}, false},
		{"only heartbeat set, above default detection", Timing{HeartbeatInterval: time.Hour}, false},
		{"tight but ordered", Timing{HeartbeatInterval: 2 * ms, DetectionTimeout: 3 * ms}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.timing.withDefaults().Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid timing accepted")
				}
				if !strings.Contains(err.Error(), "must exceed") {
					t.Fatalf("unexpected error text: %v", err)
				}
			}
		})
	}

	// The same rejection must surface at cluster startup.
	bad := Timing{HeartbeatInterval: 20 * ms, DetectionTimeout: 20 * ms}
	if _, err := StartMaster(MasterConfig{SlotsPerWorker: 2, Timing: bad}, 40); err == nil {
		t.Fatal("StartMaster accepted DetectionTimeout == HeartbeatInterval")
	}
	if _, err := StartWorker(WorkerConfig{ID: 0, MasterAddr: "127.0.0.1:1", Timing: bad}); err == nil {
		t.Fatal("StartWorker accepted DetectionTimeout == HeartbeatInterval")
	}
}

// TestPartitionShorterThanDetectionCompletes pins graceful degradation: a
// one-way partition that heals before the detection timeout stalls
// heartbeats and in-flight replies but must cause NO recomputation — the
// chain completes failure-free with correct output.
func TestPartitionShorterThanDetectionCompletes(t *testing.T) {
	want := referenceDigests(t, 4, 2, 40, baseCfg)

	chaos := &wire.Chaos{Seed: 5}
	c := startChaosCluster(t, 4, 2, 40, chaos, wire.RetryPolicy{})
	cfg := baseCfg
	cfg.AfterJob = func(job int) {
		if job != 1 {
			return
		}
		// Well under TestTiming's 150ms detection window.
		chaos.Partition("w0", "master")
		time.AfterFunc(60*time.Millisecond, func() { chaos.Heal("w0", "master") })
	}
	d := runChain(t, c, cfg)
	if d.RecoveryEpisodes != 0 {
		t.Fatalf("RecoveryEpisodes = %d, want 0: a healed sub-detection partition must not trigger recovery", d.RecoveryEpisodes)
	}
	if len(c.m.FailedNodes()) != 0 {
		t.Fatalf("FailedNodes = %v, want none", c.m.FailedNodes())
	}
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
}

// TestPartitionLongerThanDetectionTriggersRecovery is the complementary
// pin: a partition that outlives the detection timeout looks exactly like a
// death — the master declares the worker dead, recomputes its data, and
// the chain still produces correct output. The healed worker stays
// excluded (dead-ID rejoin is refused).
func TestPartitionLongerThanDetectionTriggersRecovery(t *testing.T) {
	want := referenceDigests(t, 4, 2, 40, baseCfg)

	chaos := &wire.Chaos{Seed: 5}
	c := startChaosCluster(t, 4, 2, 40, chaos, wire.RetryPolicy{})
	cfg := baseCfg
	cfg.AfterJob = func(job int) {
		if job != 1 {
			return
		}
		chaos.Partition("w0", "master")
		go func() {
			// Heal once the master has given up on w0, so replies stuck in
			// the partition drain instead of wedging task calls forever.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if c.m.FailedNodes()[0] {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			chaos.Heal("w0", "master")
		}()
	}
	d := runChain(t, c, cfg)
	if d.RecoveryEpisodes == 0 {
		t.Fatal("RecoveryEpisodes = 0: an over-detection partition must trigger recovery")
	}
	if !c.m.FailedNodes()[0] {
		t.Fatalf("FailedNodes = %v, want w0 declared dead", c.m.FailedNodes())
	}
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
}

// TestPartitionDuringShuffleRidesOut blocks a worker-to-worker data link —
// the shuffle path, not the control path — for a sub-detection window mid-
// chain. Fetches stall until the heal; nothing is recomputed and the
// output is untouched.
func TestPartitionDuringShuffleRidesOut(t *testing.T) {
	want := referenceDigests(t, 4, 2, 40, baseCfg)

	chaos := &wire.Chaos{Seed: 6}
	c := startChaosCluster(t, 4, 2, 40, chaos, wire.RetryPolicy{})
	cfg := baseCfg
	cfg.AfterJob = func(job int) {
		if job != 1 {
			return
		}
		// Both directions of one worker pair: job 2's shuffle crosses it.
		chaos.Partition("w1", "w2")
		chaos.Partition("w2", "w1")
		time.AfterFunc(60*time.Millisecond, func() {
			chaos.Heal("w1", "w2")
			chaos.Heal("w2", "w1")
		})
	}
	d := runChain(t, c, cfg)
	if d.RecoveryEpisodes != 0 {
		t.Fatalf("RecoveryEpisodes = %d, want 0", d.RecoveryEpisodes)
	}
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
}

// TestResetDuringCommitRetriesThrough runs a whole chain over connections
// that RST mid-stream every few frames. With the retry budget armed, every
// layer — input loading, task dispatch, shuffle, output commit, digest
// collection — must ride through the resets and produce byte-identical
// output with zero recomputation.
func TestResetDuringCommitRetriesThrough(t *testing.T) {
	want := referenceDigests(t, 4, 2, 40, baseCfg)

	chaos := &wire.Chaos{Seed: 9, ResetAfter: 12}
	c := startChaosCluster(t, 4, 2, 40, chaos, wire.RetryPolicy{Max: 5, Seed: 9})
	d := runChain(t, c, baseCfg)
	if d.RecoveryEpisodes != 0 {
		t.Fatalf("RecoveryEpisodes = %d, want 0: resets are transport faults, not deaths", d.RecoveryEpisodes)
	}
	if len(c.m.FailedNodes()) != 0 {
		t.Fatalf("FailedNodes = %v, want none", c.m.FailedNodes())
	}
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
}

// TestHeartbeatRedialAfterClientFailure pins the re-dial fix: when the
// worker's cached master client dies (here: closed underneath it, the same
// poisoned state a transport fault leaves behind), the heartbeat loop must
// dial a fresh client instead of erroring forever — before the fix the
// master declared the worker dead within one detection timeout.
func TestHeartbeatRedialAfterClientFailure(t *testing.T) {
	c := startCluster(t, 2, 2, 40)
	w := c.workers[0]

	w.mcMu.Lock()
	cl := w.master
	w.mcMu.Unlock()
	if cl == nil {
		t.Fatal("worker has no master client")
	}
	cl.Close()

	time.Sleep(2 * TestTiming().DetectionTimeout)
	if c.m.FailedNodes()[0] {
		t.Fatal("master declared w0 dead: heartbeat loop never re-dialed its poisoned client")
	}
	if got := len(c.m.AliveWorkers()); got != 2 {
		t.Fatalf("alive workers = %d, want 2", got)
	}
}
