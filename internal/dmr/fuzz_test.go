package dmr

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRandomFailureSchedules drives the distributed runtime through
// randomized chain shapes and kill schedules, always asserting the invariant
// the whole system exists to preserve: the recovered output is record-exact
// versus a failure-free run of the identical chain. Each scenario is seeded,
// so a failure reproduces with its logged seed.
func TestRandomFailureSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster fuzz in -short mode")
	}
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))

			workers := 4 + rng.Intn(3) // 4..6
			jobs := 3 + rng.Intn(3)    // 3..5
			cfg := ChainConfig{
				Jobs:                jobs,
				NumReducers:         4 + rng.Intn(5), // 4..8
				RecordsPerPartition: 60 + rng.Intn(80),
				Seed:                seed * 101,
				Split:               rng.Intn(2) == 0,
			}
			if cfg.Split && rng.Intn(2) == 0 {
				cfg.SplitRatio = 2 + rng.Intn(3)
			}

			// 1..2 kills at random job boundaries, never leaving fewer than
			// 2 workers (the planner needs survivors to recompute on).
			kills := map[int][]int{}
			nKills := 1 + rng.Intn(2)
			if workers-nKills < 2 {
				nKills = workers - 2
			}
			victims := rng.Perm(workers)[:nKills]
			for _, v := range victims {
				kills[1+rng.Intn(jobs)] = append(kills[1+rng.Intn(jobs)], v)
			}
			t.Logf("workers=%d jobs=%d reducers=%d split=%v ratio=%d kills=%v",
				workers, jobs, cfg.NumReducers, cfg.Split, cfg.SplitRatio, kills)

			want := referenceDigests(t, workers, 2, 40, cfg)

			c := startCluster(t, workers, 2, 40)
			run := cfg
			run.AfterJob = func(job int) {
				for _, v := range kills[job] {
					c.killAndAwaitDetection(t, v)
				}
			}
			d := runChain(t, c, run)
			digs, err := d.OutputDigests()
			if err != nil {
				t.Fatal(err)
			}
			assertDigestsEqual(t, digs, want)
		})
	}
}

// TestRepeatedFailuresSameChain drains a cluster one worker per job
// boundary, with splitting on: every recovery must replan over the
// shrinking survivor set and the output must stay exact. Two kills is the
// most input replication 3 provably survives here (the input loader placed
// partition 3's replicas on workers {3,4,5}, so a third kill of that group
// is legitimately unrecoverable — which TestUnrecoverableWhenInputLost
// covers from the other side).
func TestRepeatedFailuresSameChain(t *testing.T) {
	cfg := ChainConfig{Jobs: 4, NumReducers: 6, RecordsPerPartition: 80, Seed: 29, Split: true}
	want := referenceDigests(t, 6, 2, 40, cfg)

	c := startCluster(t, 6, 2, 40)
	run := cfg
	run.AfterJob = func(job int) {
		if job <= 2 { // kill workers 5, 4 after jobs 1, 2
			c.killAndAwaitDetection(t, 6-job)
		}
	}
	d := runChain(t, c, run)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if d.RecoveryEpisodes != 2 {
		t.Fatalf("RecoveryEpisodes = %d, want 2", d.RecoveryEpisodes)
	}
	if got := len(c.m.AliveWorkers()); got != 4 {
		t.Fatalf("alive workers = %d, want 4", got)
	}
}
