package dmr

import (
	"testing"

	"rcmp/internal/dfs"
)

// Tests for the simulator-parity features of the distributed runtime:
// scatter-only recomputation (Section IV-B2), disabling map-output reuse
// (Section V-D), and wave-granularity eviction (Section IV-C).

func TestScatterOnlyRecovery(t *testing.T) {
	cfg := ChainConfig{Jobs: 4, NumReducers: 6, RecordsPerPartition: 150, Seed: 31}
	want := referenceDigests(t, 5, 2, 30, cfg)

	c := startCluster(t, 5, 2, 30)
	run := cfg
	run.ScatterOnly = true
	run.AfterJob = func(job int) {
		if job == 3 {
			c.killAndAwaitDetection(t, 1)
		}
	}
	d := runChain(t, c, run)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if d.RecomputedReducers == 0 {
		t.Fatal("no reducers recomputed despite data loss")
	}

	// Scattered regeneration must leave at least one recomputed partition
	// whose blocks live on more than one node — unlike plain NO-SPLIT
	// recomputation, which writes everything on the single recompute node.
	spread := false
	_ = c.m.WithFS(func(fs *dfs.FS) error {
		for j := 1; j <= cfg.Jobs; j++ {
			rec := d.Chain().Job(j)
			if rec == nil {
				continue
			}
			f := fs.File(rec.OutputFile)
			if f == nil {
				continue
			}
			for _, p := range f.Partitions {
				holders := map[int]bool{}
				for _, b := range p.Blocks {
					if len(b.Replicas) > 0 {
						holders[b.Replicas[0]] = true
					}
				}
				if len(p.Blocks) > 1 && len(holders) > 1 {
					spread = true
				}
			}
		}
		return nil
	})
	if !spread {
		t.Fatal("scatter recomputation left no multi-node partition layouts")
	}

	// Scatter keeps reducers whole: lineage must never show a multi-node
	// (split) reducer output.
	for j := 1; j <= d.Chain().Len(); j++ {
		for _, r := range d.Chain().Job(j).Reducers {
			if len(r.Nodes) > 1 {
				t.Fatalf("job %d reducer %d was split under ScatterOnly", j, r.Index)
			}
		}
	}
}

func TestNoMapOutputReuseRerunsEverything(t *testing.T) {
	cfg := ChainConfig{Jobs: 4, NumReducers: 6, RecordsPerPartition: 120, Seed: 37}
	want := referenceDigests(t, 5, 2, 40, cfg)

	// Baseline with reuse: count recomputed mappers for the same scenario.
	base := startCluster(t, 5, 2, 40)
	runBase := cfg
	runBase.AfterJob = func(job int) {
		if job == 3 {
			base.killAndAwaitDetection(t, 2)
		}
	}
	dBase := runChain(t, base, runBase)

	noReuse := startCluster(t, 5, 2, 40)
	run := cfg
	run.NoMapOutputReuse = true
	run.AfterJob = func(job int) {
		if job == 3 {
			noReuse.killAndAwaitDetection(t, 2)
		}
	}
	d := runChain(t, noReuse, run)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)

	// Disabling reuse must strictly increase map re-execution: every
	// recomputed job re-runs its whole mapper table.
	if d.RecomputedMappers <= dBase.RecomputedMappers {
		t.Fatalf("RecomputedMappers with NoMapOutputReuse = %d, want > %d (reuse baseline)",
			d.RecomputedMappers, dBase.RecomputedMappers)
	}
}

func TestEvictThenRecoverExactly(t *testing.T) {
	cfg := ChainConfig{Jobs: 4, NumReducers: 6, RecordsPerPartition: 120, Seed: 41, Split: true}
	want := referenceDigests(t, 5, 2, 40, cfg)

	c := startCluster(t, 5, 2, 40)
	var d *Driver
	run := cfg
	run.AfterJob = func(job int) {
		switch job {
		case 2:
			// Storage pressure: evict persisted map outputs mid-chain.
			if err := d.Evict(1); err != nil {
				t.Errorf("evict: %v", err)
			}
		case 3:
			c.killAndAwaitDetection(t, 0)
		}
	}
	var err error
	d, err = NewDriver(c.m, run)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadInput(); err != nil {
		t.Fatal(err)
	}
	if err := d.RunChain(); err != nil {
		t.Fatal(err)
	}
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	// Recovery after eviction re-runs evicted mappers transparently; the
	// output must stay exact.
	assertDigestsEqual(t, digs, want)
}

func TestEvictReleasesStoreEntriesAndMarksLineage(t *testing.T) {
	cfg := ChainConfig{Jobs: 3, NumReducers: 6, RecordsPerPartition: 120, Seed: 43}
	c := startCluster(t, 4, 2, 40)
	d := runChain(t, c, cfg)

	before := 0
	for _, w := range c.workers {
		before += w.StoreStats().MapOutputs
	}
	if before == 0 {
		t.Fatal("no persisted map outputs to evict")
	}
	if err := d.Evict(1); err != nil {
		t.Fatal(err)
	}
	after := 0
	for _, w := range c.workers {
		after += w.StoreStats().MapOutputs
	}
	if after >= before {
		t.Fatalf("map outputs %d -> %d: eviction released nothing", before, after)
	}
	// Lineage must record the evicted outputs as gone (Node -1).
	evicted := 0
	for j := 1; j <= cfg.Jobs; j++ {
		for _, m := range d.Chain().Job(j).Mappers {
			if m.Node < 0 {
				evicted++
			}
		}
	}
	if evicted == 0 {
		t.Fatal("eviction left no Node=-1 markers in the lineage")
	}
}

func TestEvictMoreThanPersistedFails(t *testing.T) {
	cfg := ChainConfig{Jobs: 2, NumReducers: 4, RecordsPerPartition: 60, Seed: 47}
	c := startCluster(t, 3, 2, 30)
	d := runChain(t, c, cfg)
	if err := d.Evict(1 << 50); err == nil {
		t.Fatal("eviction of more bytes than persisted succeeded")
	}
}

func TestScatterAndSplitMutuallyExclusive(t *testing.T) {
	c := startCluster(t, 2, 1, 10)
	if _, err := NewDriver(c.m, ChainConfig{Jobs: 1, NumReducers: 1, Split: true, ScatterOnly: true}); err == nil {
		t.Fatal("Split+ScatterOnly accepted")
	}
}
