package dmr

import (
	"testing"
	"time"
)

// startClusterWithStraggler builds a cluster whose last worker delays every
// task (a slow-disk straggler).
func startClusterWithStraggler(t *testing.T, n, slots, blockRecords int, delay time.Duration) *cluster {
	t.Helper()
	m, err := StartMaster(MasterConfig{SlotsPerWorker: slots, Timing: TestTiming()}, blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{m: m}
	t.Cleanup(func() {
		for _, w := range c.workers {
			w.Kill()
		}
		m.Close()
	})
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{ID: i, MasterAddr: m.Addr(), Timing: TestTiming()}
		if i == n-1 {
			cfg.TaskDelay = delay
		}
		w, err := StartWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
	return c
}

func TestSpeculationDuplicatesStragglers(t *testing.T) {
	cfg := ChainConfig{
		Jobs: 3, NumReducers: 6, RecordsPerPartition: 120, Seed: 53,
		Speculation: true, SpeculationFactor: 1.5,
	}
	// Reference from a healthy cluster: speculation must not change data.
	want := referenceDigests(t, 5, 2, 40, cfg)

	c := startClusterWithStraggler(t, 5, 2, 40, 150*time.Millisecond)
	d := runChain(t, c, cfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)

	// With a 150 ms straggler against ~ms-scale peers, at least one mapper
	// on the slow worker must have been duplicated, and the duplicate must
	// have won at least once (wasted < launched).
	if d.SpeculativeLaunched == 0 {
		t.Fatal("no speculative mappers launched despite a straggler worker")
	}
	if d.SpeculativeWasted >= d.SpeculativeLaunched {
		t.Fatalf("speculation never won: launched=%d wasted=%d",
			d.SpeculativeLaunched, d.SpeculativeWasted)
	}
	t.Logf("speculative launched=%d wasted=%d", d.SpeculativeLaunched, d.SpeculativeWasted)
}

func TestSpeculationOffLaunchesNothing(t *testing.T) {
	cfg := ChainConfig{Jobs: 3, NumReducers: 6, RecordsPerPartition: 120, Seed: 53}
	c := startClusterWithStraggler(t, 5, 2, 40, 50*time.Millisecond)
	d := runChain(t, c, cfg)
	if d.SpeculativeLaunched != 0 || d.SpeculativeWasted != 0 {
		t.Fatalf("speculation disabled but launched=%d wasted=%d",
			d.SpeculativeLaunched, d.SpeculativeWasted)
	}
}

func TestSpeculationWithFailureStaysExact(t *testing.T) {
	cfg := ChainConfig{
		Jobs: 4, NumReducers: 6, RecordsPerPartition: 120, Seed: 59,
		Split: true, Speculation: true,
	}
	want := referenceDigests(t, 5, 2, 40, cfg)

	c := startClusterWithStraggler(t, 5, 2, 40, 100*time.Millisecond)
	run := cfg
	run.AfterJob = func(job int) {
		if job == 2 {
			c.killAndAwaitDetection(t, 0) // kill a healthy worker, keep the straggler
		}
	}
	d := runChain(t, c, run)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
}
