package dmr

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"rcmp/internal/core"
	"rcmp/internal/dfs"
	"rcmp/internal/lineage"
	"rcmp/internal/wire"
	"rcmp/internal/workload"
)

// MasterConfig configures the master.
type MasterConfig struct {
	ListenAddr     string // control address ("127.0.0.1:0" for tests)
	SlotsPerWorker int    // mapper slots and reducer slots per worker (paper's S)
	Timing         Timing

	// Chaos, when non-nil, routes the control listener and every
	// master-side dial through the fault injector under the endpoint name
	// "master".
	Chaos *wire.Chaos
	// Retry bounds transport-error re-attempts on master->worker RPCs
	// (task dispatch, loads, broadcasts). Its budget is distinct from death
	// detection: a retried task call rides out a flaky link, while the
	// heartbeat monitor alone declares workers dead. Zero disables.
	Retry wire.RetryPolicy
}

// DataLossError reports that a run was cancelled because worker deaths made
// unreplicated data unreachable. The driver reacts the way the paper's
// middleware does: cancel, plan a recomputation cascade, resubmit.
type DataLossError struct {
	Victims []int // all workers declared dead so far, ascending
}

func (e *DataLossError) Error() string {
	return fmt.Sprintf("dmr: job cancelled by node failure (dead workers %v)", e.Victims)
}

// workerInfo is the master's view of one worker.
type workerInfo struct {
	id     int
	addr   string
	lastHB time.Time
	alive  bool

	mapSlots    chan struct{}
	reduceSlots chan struct{}
}

// JobSpec describes one job run submitted by the driver.
type JobSpec struct {
	ID          int // chain job ID (1-based); recomputation runs reuse the original ID
	InFile      string
	OutFile     string
	NumReducers int
	OutputRepl  int
	// CarveRecords bounds records per output block for whole (unsplit)
	// reducers, so downstream map phases run one task per block.
	CarveRecords int

	// Recompute tags a recomputation run (the middleware's tagging of
	// Section IV-A). Nil for initial runs and full restarts.
	Recompute *RecomputeSpec

	// Speculation duplicates straggling mappers on another worker once a
	// mapper has run longer than SpeculationFactor times the mean of the
	// run's completed mappers (Section II; task-level, orthogonal to
	// recomputation). The first copy to finish wins; map outputs are
	// content-addressed and deterministic, so the duplicate is idempotent.
	Speculation       bool
	SpeculationFactor float64 // default 1.5
}

// RecomputeSpec carries the planner's step for one recomputed job.
type RecomputeSpec struct {
	// Mappers lists mapper indices (into PrevMappers) to re-execute; the
	// rest are reused from their persisted outputs.
	Mappers []int
	// Reducers lists the reducer outputs to regenerate, with split counts.
	Reducers []core.ReducerRun
	// PrevMappers is the job's full mapper table from its lineage record,
	// so the master can locate reused outputs and re-run inputs.
	PrevMappers []lineage.MapperMeta
	// Scatter spreads each regenerated (unsplit) reducer's output blocks
	// over all live workers — the Section IV-B2 alternative to splitting.
	Scatter bool
}

// JobReport is what a completed run tells the driver, in lineage terms.
type JobReport struct {
	Mappers  []lineage.MapperMeta // all mappers (initial) or the re-run subset (recompute)
	Reducers []lineage.ReducerMeta
	// RemoteReads counts mapper inputs fetched from peers during this run.
	RemoteReads int
	// SpeculativeLaunched and SpeculativeWasted count duplicate mapper
	// launches and the subset that lost the race — the paper's
	// "speculative tasks that provide no benefit".
	SpeculativeLaunched int
	SpeculativeWasted   int
}

// Master is the control plane: worker registry, liveness, DFS metadata,
// and per-job task scheduling.
type Master struct {
	cfg    MasterConfig
	server *wire.Server
	peers  *wire.Pool

	mu      sync.Mutex
	workers map[int]*workerInfo
	failed  map[int]bool
	cancel  chan struct{} // non-nil while a run is active; closed on death
	stopMon chan struct{}
	monWG   sync.WaitGroup
	closed  bool

	// fsMu guards fs. Lock ordering: fsMu may be taken while holding mu
	// (the monitor marks loss), but never mu while holding fsMu.
	fsMu sync.Mutex
	fs   *dfs.FS
}

// StartMaster binds the control server and starts the liveness monitor.
// blockRecords is the DFS "block size" in records (the unit input files are
// carved into; the paper's 256 MB blocks).
func StartMaster(cfg MasterConfig, blockRecords int) (*Master, error) {
	cfg.Timing = cfg.Timing.withDefaults()
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	if cfg.SlotsPerWorker <= 0 {
		cfg.SlotsPerWorker = 2
	}
	if blockRecords <= 0 {
		return nil, fmt.Errorf("dmr: blockRecords %d", blockRecords)
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, fmt.Errorf("dmr: master listen: %w", err)
	}
	if cfg.Chaos != nil {
		ln = cfg.Chaos.WrapListener(ln, "master")
	}
	m := &Master{
		cfg: cfg,
		peers: wire.NewPoolOpts(cfg.Timing.DialTimeout, wire.PoolOptions{
			Chaos: cfg.Chaos, Self: "master", Retry: cfg.Retry,
		}),
		workers: make(map[int]*workerInfo),
		failed:  make(map[int]bool),
		fs:      dfs.New(int64(blockRecords)),
		stopMon: make(chan struct{}),
	}
	m.server = wire.NewServer(ln, m.handle)
	m.monWG.Add(1)
	go m.monitor()
	return m, nil
}

// Addr returns the master's control address.
func (m *Master) Addr() string { return m.server.Addr() }

// WithFS runs f with exclusive access to the DFS metadata. The driver's
// planner reads the namespace through this (the liveness monitor mutates it
// concurrently when it declares data lost).
func (m *Master) WithFS(f func(fs *dfs.FS) error) error {
	m.fsMu.Lock()
	defer m.fsMu.Unlock()
	return f(m.fs)
}

// BlockRecords returns the DFS block size in records.
func (m *Master) BlockRecords() int {
	return int(m.fs.BlockSize()) // immutable after construction
}

// FailedNodes returns a copy of the set of workers declared dead.
func (m *Master) FailedNodes() map[int]bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[int]bool, len(m.failed))
	for k, v := range m.failed {
		out[k] = v
	}
	return out
}

// AliveWorkers returns the IDs of live registered workers, ascending.
func (m *Master) AliveWorkers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.aliveLocked()
}

func (m *Master) aliveLocked() []int {
	var out []int
	for id, w := range m.workers {
		if w.alive {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// WorkerAddr returns the data address of a worker (dead or alive).
func (m *Master) WorkerAddr(id int) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[id]
	if w == nil {
		return "", fmt.Errorf("dmr: unknown worker %d", id)
	}
	return w.addr, nil
}

// Close shuts the master down.
func (m *Master) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.stopMon)
	m.mu.Unlock()
	m.monWG.Wait()
	m.server.Close()
	m.peers.Close()
}

func (m *Master) handle(_ net.Addr, req any) (any, error) {
	switch r := req.(type) {
	case RegisterReq:
		return m.register(r)
	case HeartbeatReq:
		m.mu.Lock()
		if w := m.workers[r.Worker]; w != nil && w.alive {
			w.lastHB = time.Now()
		}
		m.mu.Unlock()
		return HeartbeatResp{}, nil
	default:
		return nil, fmt.Errorf("dmr: master: unknown request %T", req)
	}
}

func (m *Master) register(r RegisterReq) (any, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r.Worker < 0 {
		return nil, fmt.Errorf("dmr: register: negative worker ID %d", r.Worker)
	}
	if old, ok := m.workers[r.Worker]; ok && old.alive {
		return nil, fmt.Errorf("dmr: worker %d already registered at %s", r.Worker, old.addr)
	}
	if m.failed[r.Worker] {
		// Re-registration of a failed ID would resurrect lost data without
		// regenerating it; the model (and HDFS practice) gives replacements
		// fresh IDs instead.
		return nil, fmt.Errorf("dmr: worker ID %d was declared dead; rejoin with a new ID", r.Worker)
	}
	m.workers[r.Worker] = &workerInfo{
		id: r.Worker, addr: r.Addr, lastHB: time.Now(), alive: true,
		mapSlots:    make(chan struct{}, m.cfg.SlotsPerWorker),
		reduceSlots: make(chan struct{}, m.cfg.SlotsPerWorker),
	}
	return RegisterResp{}, nil
}

// monitor declares workers dead when their heartbeats go stale, marks the
// DFS data lost, and cancels any active run — the detection timeout path.
func (m *Master) monitor() {
	defer m.monWG.Done()
	t := time.NewTicker(m.cfg.Timing.monitorTick())
	defer t.Stop()
	for {
		select {
		case <-m.stopMon:
			return
		case now := <-t.C:
			m.mu.Lock()
			for _, w := range m.workers {
				if w.alive && now.Sub(w.lastHB) > m.cfg.Timing.DetectionTimeout {
					m.markDeadLocked(w)
				}
			}
			m.mu.Unlock()
		}
	}
}

func (m *Master) markDeadLocked(w *workerInfo) {
	w.alive = false
	m.failed[w.id] = true
	m.fsMu.Lock()
	m.fs.FailNode(w.id)
	m.fsMu.Unlock()
	if m.cancel != nil {
		close(m.cancel)
		m.cancel = nil
	}
}

// victimsLocked returns the dead worker IDs, ascending.
func (m *Master) victimsLocked() []int {
	var out []int
	for id := range m.failed {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// ---- task placement helpers ----

// aliveAddrs maps node IDs to data addresses, skipping dead workers.
func (m *Master) aliveAddrs(ids []int) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, id := range ids {
		if w := m.workers[id]; w != nil && w.alive {
			out = append(out, w.addr)
		}
	}
	return out
}

func (m *Master) workerIfAlive(id int) *workerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	if w := m.workers[id]; w != nil && w.alive {
		return w
	}
	return nil
}

// acquire takes one slot, or reports cancellation.
func acquire(slots chan struct{}, cancel <-chan struct{}) error {
	select {
	case slots <- struct{}{}:
		return nil
	case <-cancel:
		return errCancelled
	}
}

var errCancelled = errors.New("dmr: run cancelled")

// ---- data-plane helpers (driver-facing) ----

// LoadFile loads a generated input file into the cluster: partition p's
// records are carved into blocks of the FS block size, placed writer-local
// on worker p%N with repl replicas, pushed to the holders, and recorded in
// the metadata. This is the replicated original input of Section V-A.
func (m *Master) LoadFile(name string, parts [][]workload.Record, repl int) error {
	alive := m.AliveWorkers()
	if len(alive) == 0 {
		return errors.New("dmr: no live workers to load input")
	}
	if repl > len(alive) {
		repl = len(alive)
	}
	if err := m.WithFS(func(fs *dfs.FS) error { _, err := fs.Create(name, len(parts)); return err }); err != nil {
		return err
	}
	blockRecords := m.BlockRecords()
	for p, rows := range parts {
		var blocks [][]workload.Record
		for len(rows) > blockRecords {
			blocks = append(blocks, rows[:blockRecords])
			rows = rows[blockRecords:]
		}
		blocks = append(blocks, rows)

		writer := alive[p%len(alive)]
		var set []int
		_ = m.WithFS(func(fs *dfs.FS) error { set = fs.PlanReplicas(writer, repl, alive); return nil })
		sizes := make([]int64, len(blocks))
		sets := make([][]int, len(blocks))
		for b, rowsB := range blocks {
			sizes[b] = int64(len(rowsB))
			sets[b] = set
			for _, node := range set {
				w := m.workerIfAlive(node)
				if w == nil {
					return fmt.Errorf("dmr: replica target %d died during load", node)
				}
				if _, err := m.peers.Call(w.addr, PutBlockReq{File: name, Part: p, Block: b, Records: rowsB}, m.cfg.Timing.CallTimeout); err != nil {
					return fmt.Errorf("dmr: load %s/p%d/b%d to worker %d: %w", name, p, b, node, err)
				}
			}
		}
		if err := m.WithFS(func(fs *dfs.FS) error {
			_, err := fs.SetPartitionBlocks(name, p, sizes, sets)
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

// broadcast sends req to every live worker, ignoring per-worker errors for
// dead-on-arrival peers (the monitor will declare them soon).
func (m *Master) broadcast(req any) {
	m.mu.Lock()
	var addrs []string
	for _, w := range m.workers {
		if w.alive {
			addrs = append(addrs, w.addr)
		}
	}
	m.mu.Unlock()
	for _, addr := range addrs {
		_, _ = m.peers.Call(addr, req, m.cfg.Timing.CallTimeout)
	}
}

// DropFileEverywhere removes a file's blocks cluster-wide plus its metadata.
func (m *Master) DropFileEverywhere(name string) {
	m.broadcast(DropFileReq{File: name})
	_ = m.WithFS(func(fs *dfs.FS) error { fs.Delete(name); return nil })
}

// ReclaimMapOutputs releases persisted map outputs of the given jobs on
// every live worker (checkpoint reclamation, Section IV-C).
func (m *Master) ReclaimMapOutputs(jobs []int) {
	if len(jobs) > 0 {
		m.broadcast(DropMapOutputsReq{Jobs: jobs})
	}
}

// EvictMapOutputs releases specific persisted map outputs cluster-wide
// (wave-granularity eviction under storage pressure, Section IV-C).
func (m *Master) EvictMapOutputs(refs []MapOutRef) {
	if len(refs) > 0 {
		m.broadcast(EvictMapOutputsReq{Refs: refs})
	}
}

// SlotsPerWorker returns the configured mapper/reducer slots per worker.
func (m *Master) SlotsPerWorker() int { return m.cfg.SlotsPerWorker }

// PartitionDigest merges the per-block digests of one partition, reading
// each block from its first live replica.
func (m *Master) PartitionDigest(file string, part int) (workload.Digest, error) {
	var d workload.Digest
	var locs [][]int
	_ = m.WithFS(func(fs *dfs.FS) error { locs = fs.BlockLocations(file, part); return nil })
	if locs == nil {
		return d, fmt.Errorf("dmr: digest of missing partition %s/p%d", file, part)
	}
	for b, nodes := range locs {
		if len(nodes) == 0 {
			return d, fmt.Errorf("dmr: %s/p%d/b%d has no live replica", file, part, b)
		}
		var last error
		ok := false
		for _, node := range nodes {
			w := m.workerIfAlive(node)
			if w == nil {
				last = fmt.Errorf("dmr: replica %d dead", node)
				continue
			}
			resp, err := m.peers.Call(w.addr, DigestReq{File: file, Part: part, Block: b}, m.cfg.Timing.CallTimeout)
			if err != nil {
				last = err
				continue
			}
			d.Merge(resp.(DigestResp).Digest)
			ok = true
			break
		}
		if !ok {
			return d, fmt.Errorf("dmr: %s/p%d/b%d unreadable: %w", file, part, b, last)
		}
	}
	return d, nil
}
