package dmr

import (
	"fmt"
	"sort"
	"sync"

	"rcmp/internal/workload"
)

// blockKey names one stored DFS block.
type blockKey struct {
	file  string
	part  int
	block int
}

// mapKey names one persisted map output by the input block the mapper
// consumed. Content addressing (rather than a task index) keeps persisted
// outputs valid across recomputations that renumber a job's mapper table
// when an input partition's block layout changes.
type mapKey struct {
	job   int
	part  int
	block int
}

// store is a worker's local storage: DFS blocks (its DataNode role) and
// persisted map outputs (RCMP's cross-job persistence). Everything lives in
// memory; killing the worker makes it unreachable, which is all the failure
// model needs.
type store struct {
	mu      sync.RWMutex
	blocks  map[blockKey][]workload.Record
	mapOuts map[mapKey][][]workload.Record // per-reducer buckets
}

func newStore() *store {
	return &store{
		blocks:  make(map[blockKey][]workload.Record),
		mapOuts: make(map[mapKey][][]workload.Record),
	}
}

// PutBlock stores (a copy of the slice header of) a block. Records are
// treated as immutable by every reader.
func (s *store) PutBlock(file string, part, block int, rows []workload.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blocks[blockKey{file, part, block}] = rows
}

// GetBlock reads a stored block.
func (s *store) GetBlock(file string, part, block int) ([]workload.Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rows, ok := s.blocks[blockKey{file, part, block}]
	if !ok {
		return nil, fmt.Errorf("dmr: block %s/p%d/b%d not stored here", file, part, block)
	}
	return rows, nil
}

// HasBlock reports whether a block is stored locally.
func (s *store) HasBlock(file string, part, block int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blocks[blockKey{file, part, block}]
	return ok
}

// DropPartition deletes every block of a partition.
func (s *store) DropPartition(file string, part int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blocks {
		if k.file == file && k.part == part {
			delete(s.blocks, k)
		}
	}
}

// DropFile deletes every block of a file.
func (s *store) DropFile(file string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.blocks {
		if k.file == file {
			delete(s.blocks, k)
		}
	}
}

// PutMapOutput persists a mapper's bucketed output under its input block.
func (s *store) PutMapOutput(job, part, block int, buckets [][]workload.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mapOuts[mapKey{job, part, block}] = buckets
}

// MapOutputSlice returns the records of one persisted map output destined
// for (reducer, split). With splits == 1 the whole reducer bucket returns.
func (s *store) MapOutputSlice(job, part, block, reducer, split, splits int) ([]workload.Record, error) {
	s.mu.RLock()
	buckets, ok := s.mapOuts[mapKey{job, part, block}]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dmr: map output job %d over p%d/b%d not persisted here", job, part, block)
	}
	if reducer < 0 || reducer >= len(buckets) {
		return nil, fmt.Errorf("dmr: map output job %d over p%d/b%d has no reducer %d", job, part, block, reducer)
	}
	rows := buckets[reducer]
	if splits <= 1 {
		return rows, nil
	}
	var out []workload.Record
	for _, r := range rows {
		if splitOfRecord(r, splits) == split {
			out = append(out, r)
		}
	}
	return out, nil
}

// EvictMapOutput releases one persisted map output; evicting an absent one
// is a no-op (another worker may hold it).
func (s *store) EvictMapOutput(job, part, block int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.mapOuts, mapKey{job, part, block})
}

// DropMapOutputs releases the persisted map outputs of the given jobs.
func (s *store) DropMapOutputs(jobs []int) {
	drop := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		drop[j] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.mapOuts {
		if drop[k.job] {
			delete(s.mapOuts, k)
		}
	}
}

// BlockDigest fingerprints one stored block.
func (s *store) BlockDigest(file string, part, block int) (workload.Digest, error) {
	rows, err := s.GetBlock(file, part, block)
	if err != nil {
		return workload.Digest{}, err
	}
	return workload.DigestRecords(rows), nil
}

// Stats summarizes a store for observability and tests.
type Stats struct {
	Blocks       int
	BlockRecords int
	MapOutputs   int
	Files        []string
}

// Stats returns a snapshot of what the store holds.
func (s *store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Blocks: len(s.blocks), MapOutputs: len(s.mapOuts)}
	files := make(map[string]bool)
	for k, rows := range s.blocks {
		st.BlockRecords += len(rows)
		files[k.file] = true
	}
	for f := range files {
		st.Files = append(st.Files, f)
	}
	sort.Strings(st.Files)
	return st
}
