package dmr

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"rcmp/internal/core"
	"rcmp/internal/dfs"
	"rcmp/internal/lineage"
	"rcmp/internal/workload"
)

// ChainConfig describes a multi-job chain run on the distributed runtime.
type ChainConfig struct {
	Jobs        int
	NumReducers int

	// InputParts is the number of input partitions (default: one per live
	// worker); RecordsPerPartition sizes each.
	InputParts          int
	RecordsPerPartition int

	InputRepl  int // replication of the original input (default 3)
	OutputRepl int // replication of job outputs (RCMP: 1, the default)

	// HybridEveryK/HybridRepl enable the Section IV-C hybrid policy; only
	// meaningful with OutputRepl == 1.
	HybridEveryK int
	HybridRepl   int
	// ReclaimAtCheckpoints releases persisted outputs made unreachable by a
	// completed hybrid checkpoint.
	ReclaimAtCheckpoints bool

	// Split enables reducer splitting during recomputation; SplitRatio is
	// the split count (0 = one split per surviving worker).
	Split      bool
	SplitRatio int

	// ScatterOnly is the Section IV-B2 alternative: recomputed reducers
	// run whole but spread their output blocks over all live workers,
	// defusing the next job's map-phase hot-spot without dividing the
	// reduce work. Mutually exclusive with Split.
	ScatterOnly bool

	// NoMapOutputReuse re-runs every mapper of a recomputed job instead of
	// reusing persisted outputs (the Section V-D isolation knob).
	NoMapOutputReuse bool

	// Speculation duplicates straggling mappers on another worker
	// (Section II); SpeculationFactor is the straggler multiple of the
	// mean completed-mapper duration (default 1.5).
	Speculation       bool
	SpeculationFactor float64

	Seed int64

	// AfterJob, when non-nil, runs after each successfully committed chain
	// job. Tests and examples inject failures from it (the paper's "15 s
	// after the start of job X" points collapse to job boundaries here; the
	// interrupted-job path is exercised with asynchronous kills).
	AfterJob func(job int)

	// PlanObserver, when non-nil, observes every recovery plan immediately
	// after it is built and invariant-checked, before any of its steps run.
	// The cross-validation harness captures recovery decisions through it;
	// the chain is the driver's live lineage and must not be mutated.
	PlanObserver func(frontier int, plan *core.Plan, ch *lineage.Chain)

	// OnRunStart, when non-nil, fires as each run is submitted, with the
	// 1-based run counter (matching the simulator's Injection.AtRun
	// numbering), the job, and the run kind. The cross-validation harness
	// schedules its failure injections from it.
	OnRunStart func(run, job int, kind string)
}

func (c *ChainConfig) withDefaults(aliveWorkers int) ChainConfig {
	out := *c
	if out.InputParts == 0 {
		out.InputParts = aliveWorkers
	}
	if out.RecordsPerPartition == 0 {
		out.RecordsPerPartition = 200
	}
	if out.InputRepl == 0 {
		out.InputRepl = 3
	}
	if out.OutputRepl == 0 {
		out.OutputRepl = 1
	}
	if out.HybridEveryK > 0 && out.HybridRepl == 0 {
		out.HybridRepl = 2
	}
	return out
}

// Validate reports configuration errors.
func (c *ChainConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("dmr: Jobs=%d", c.Jobs)
	case c.NumReducers <= 0:
		return fmt.Errorf("dmr: NumReducers=%d", c.NumReducers)
	case c.ReclaimAtCheckpoints && c.HybridEveryK <= 0:
		return errors.New("dmr: ReclaimAtCheckpoints requires HybridEveryK")
	case c.OutputRepl > 1 && c.HybridEveryK > 0:
		return errors.New("dmr: hybrid policy is for OutputRepl == 1 chains")
	case c.Split && c.ScatterOnly:
		return errors.New("dmr: Split and ScatterOnly are mutually exclusive")
	}
	return nil
}

// Driver is the paper's middleware (Section IV-A): it knows the job
// dependencies, submits jobs one at a time, and on data loss infers and
// submits the recomputation cascade.
type Driver struct {
	m   *Master
	cfg ChainConfig
	ch  *lineage.Chain

	// handled tracks worker deaths already folded into a recovery plan.
	handled map[int]bool
	// attempted tracks jobs already submitted once, so a re-submission
	// after data loss is logged as a restart rather than an initial run.
	attempted map[int]bool

	// RunLog records every submitted run in order with wall-clock spans —
	// the runtime-side analogue of the simulator's per-run stats, consumed
	// by the cross-validation harness for phase-time ratios.
	RunLog []RunSpan

	// Stats observable by tests and examples.
	StartedRuns         int
	RecoveryEpisodes    int
	RecomputedMappers   int
	RecomputedReducers  int
	RemoteReads         int
	SpeculativeLaunched int
	SpeculativeWasted   int
}

// NewDriver builds a driver for a master whose workers have registered.
func NewDriver(m *Master, cfg ChainConfig) (*Driver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	alive := len(m.AliveWorkers())
	if alive == 0 {
		return nil, errors.New("dmr: no live workers")
	}
	return &Driver{
		m: m, cfg: cfg.withDefaults(alive), ch: lineage.NewChain(),
		handled: make(map[int]bool), attempted: make(map[int]bool),
	}, nil
}

// RunSpan is one submitted job run in the driver's RunLog.
type RunSpan struct {
	Run        int    // 0-based submission index
	Job        int    // chain job ID
	Kind       string // "initial", "restart", or "recompute"
	Start, End time.Time
	Err        bool // the run ended in an error (typically data loss)
}

// logRun appends a RunLog entry for a run being submitted and returns the
// closer that stamps its end.
func (d *Driver) logRun(job int, kind string) func(err error) {
	idx := len(d.RunLog)
	d.RunLog = append(d.RunLog, RunSpan{Run: d.StartedRuns, Job: job, Kind: kind, Start: time.Now()})
	d.StartedRuns++
	if d.cfg.OnRunStart != nil {
		d.cfg.OnRunStart(d.StartedRuns, job, kind)
	}
	return func(err error) {
		d.RunLog[idx].End = time.Now()
		d.RunLog[idx].Err = err != nil
	}
}

// Chain exposes the recorded lineage.
func (d *Driver) Chain() *lineage.Chain { return d.ch }

// inputName and outputName mirror the naming of the other engines.
func jobFiles(job int) (in, out string) {
	in = "input"
	if job > 1 {
		in = fmt.Sprintf("out%d", job-1)
	}
	return in, fmt.Sprintf("out%d", job)
}

func (d *Driver) repl(job int) int {
	if d.cfg.OutputRepl > 1 {
		return d.cfg.OutputRepl
	}
	return core.ReplicationForJob(job, d.cfg.HybridEveryK, d.cfg.HybridRepl)
}

// LoadInput generates and loads the replicated computation input.
func (d *Driver) LoadInput() error {
	parts := make([][]workload.Record, d.cfg.InputParts)
	for p := range parts {
		parts[p] = workload.Generate(d.cfg.RecordsPerPartition, d.cfg.Seed+int64(p))
	}
	return d.m.LoadFile("input", parts, d.cfg.InputRepl)
}

// RunChain executes the whole chain, recovering from any worker deaths the
// master detects along the way. Call LoadInput first.
func (d *Driver) RunChain() error {
	job := 1
	for job <= d.cfg.Jobs {
		// Deaths between jobs (or during a previous recovery) may have
		// destroyed data this job needs; fold them in before submitting.
		if d.unhandledFailures() {
			if err := d.recover(job); err != nil {
				return err
			}
		}
		rep, err := d.runFull(job)
		if err != nil {
			var loss *DataLossError
			if errors.As(err, &loss) {
				if err := d.recover(job); err != nil {
					return err
				}
				continue // restart the interrupted job
			}
			return err
		}
		if err := d.commitInitial(job, rep); err != nil {
			return err
		}
		if d.cfg.ReclaimAtCheckpoints && d.repl(job) > 1 {
			if err := d.reclaimThrough(job); err != nil {
				return err
			}
		}
		if d.cfg.AfterJob != nil {
			d.cfg.AfterJob(job)
		}
		job++
	}
	return nil
}

func (d *Driver) unhandledFailures() bool {
	for id := range d.m.FailedNodes() {
		if !d.handled[id] {
			return true
		}
	}
	return false
}

func (d *Driver) markFailuresHandled() {
	for id := range d.m.FailedNodes() {
		d.handled[id] = true
	}
}

// runFull submits one full job run (initial or restart).
func (d *Driver) runFull(job int) (*JobReport, error) {
	in, out := jobFiles(job)
	kind := "initial"
	if d.attempted[job] {
		kind = "restart"
	}
	d.attempted[job] = true
	done := d.logRun(job, kind)
	rep, err := d.m.RunJob(JobSpec{
		ID:                job,
		InFile:            in,
		OutFile:           out,
		NumReducers:       d.cfg.NumReducers,
		OutputRepl:        d.repl(job),
		CarveRecords:      d.m.BlockRecords(),
		Speculation:       d.cfg.Speculation,
		SpeculationFactor: d.cfg.SpeculationFactor,
	})
	done(err)
	return rep, err
}

// commitInitial appends the completed job to the lineage.
func (d *Driver) commitInitial(job int, rep *JobReport) error {
	in, out := jobFiles(job)
	rec := &lineage.JobRecord{
		ID: job, Name: fmt.Sprintf("job%d", job),
		InputFile: in, OutputFile: out,
		Splittable: true, Completed: true,
		Mappers: rep.Mappers, Reducers: rep.Reducers,
	}
	d.RemoteReads += rep.RemoteReads
	d.SpeculativeLaunched += rep.SpeculativeLaunched
	d.SpeculativeWasted += rep.SpeculativeWasted
	return d.ch.Append(rec)
}

// recover plans and executes the recomputation cascade so that job
// `frontier` can (re)start with its input complete. New failures during
// recovery simply rebuild the plan — a single pass services any number of
// accumulated data-loss events (Section IV-A).
func (d *Driver) recover(frontier int) error {
	d.RecoveryEpisodes++
	for {
		d.markFailuresHandled()
		alive := d.m.AliveWorkers()
		if len(alive) == 0 {
			return errors.New("dmr: all workers dead")
		}
		// Read the failed set before entering WithFS: FailedNodes takes the
		// registry lock, which the monitor holds while it takes fsMu to mark
		// data lost — taking them in the opposite order here deadlocks.
		failed := d.m.FailedNodes()
		var plan *core.Plan
		err := d.m.WithFS(func(fs *dfs.FS) error {
			var err error
			plan, err = core.BuildPlan(d.ch, fs, frontier, failed, core.Options{
				Split:            d.cfg.Split,
				SplitRatio:       d.cfg.SplitRatio,
				AliveNodes:       len(alive),
				NoMapOutputReuse: d.cfg.NoMapOutputReuse,
			})
			if err != nil {
				return err
			}
			// Under NoMapOutputReuse every mapper re-runs by policy, so
			// mapper justification is not checkable.
			return core.CheckPlan(d.ch, fs, failed, plan, !d.cfg.NoMapOutputReuse)
		})
		if err != nil {
			return err
		}
		if d.cfg.PlanObserver != nil {
			d.cfg.PlanObserver(frontier, plan, d.ch)
		}
		if err := d.runPlanSteps(plan); err != nil {
			var loss *DataLossError
			if errors.As(err, &loss) {
				continue // nested failure: fold in and re-plan
			}
			return err
		}
		if !d.unhandledFailures() {
			return nil
		}
	}
}

// runPlanSteps executes the plan's partial job re-executions in order,
// updating the lineage as outputs land on new nodes.
//
// Between steps it tracks partitions whose regeneration changed the block
// layout of the next job's input: a split regeneration replaces the carved
// canonical blocks with one block per split, and a whole regeneration over
// a previously-split layout restores the canonical carving. Either way the
// next job's mapper table is re-derived from the new layout and all its
// readers re-run — the block-level generalization of the paper's Figure 5
// split-invalidation rule.
func (d *Driver) runPlanSteps(plan *core.Plan) error {
	var relayout map[int]bool // input partitions of the upcoming step with a changed layout
	for _, step := range plan.Steps {
		rec := d.ch.Job(step.Job)
		if rec == nil {
			return fmt.Errorf("dmr: plan step for unknown job %d", step.Job)
		}
		mappers := step.Mappers
		if len(relayout) > 0 {
			var err error
			mappers, err = d.resyncMappers(rec, step.Mappers, relayout)
			if err != nil {
				return err
			}
		}
		// Decide next step's relayout set before the reducer metas change:
		// it depends on whether the OLD layout was split-written.
		next := make(map[int]bool)
		for _, rr := range step.Reducers {
			prevSplit := rr.Reducer < len(rec.Reducers) && len(rec.Reducers[rr.Reducer].Nodes) > 1
			if rr.Splits > 1 || prevSplit {
				next[rr.Reducer] = true
			}
		}

		done := d.logRun(step.Job, "recompute")
		rep, err := d.m.RunJob(JobSpec{
			ID:                step.Job,
			InFile:            rec.InputFile,
			OutFile:           rec.OutputFile,
			NumReducers:       d.cfg.NumReducers,
			OutputRepl:        d.repl(step.Job),
			CarveRecords:      d.m.BlockRecords(),
			Speculation:       d.cfg.Speculation,
			SpeculationFactor: d.cfg.SpeculationFactor,
			Recompute: &RecomputeSpec{
				Mappers:     mappers,
				Reducers:    step.Reducers,
				PrevMappers: append([]lineage.MapperMeta(nil), rec.Mappers...),
				Scatter:     d.cfg.ScatterOnly,
			},
		})
		done(err)
		if err != nil {
			return err
		}
		for _, mm := range rep.Mappers {
			d.ch.SetMapperOutput(step.Job, mm.Index, mm.Node, mm.OutputBytes)
		}
		for _, rm := range rep.Reducers {
			d.ch.SetReducerOutput(step.Job, rm.Index, rm.Nodes, rm.OutputBytes)
		}
		d.RecomputedMappers += len(mappers)
		d.RecomputedReducers += len(step.Reducers)
		d.RemoteReads += rep.RemoteReads
		d.SpeculativeLaunched += rep.SpeculativeLaunched
		d.SpeculativeWasted += rep.SpeculativeWasted
		relayout = next
	}
	return nil
}

// resyncMappers rewrites a job's mapper table after its input partitions in
// `relayout` changed block layout: the stale descriptors of those readers
// are replaced by one fresh mapper per current block, all of which must
// re-run. Kept mappers are renumbered densely (persisted outputs are keyed
// by input block, so renumbering is safe). Returns the updated re-run set.
func (d *Driver) resyncMappers(rec *lineage.JobRecord, stepMappers []int, relayout map[int]bool) ([]int, error) {
	rerunOld := make(map[int]bool, len(stepMappers))
	for _, mi := range stepMappers {
		rerunOld[mi] = true
	}
	layout := make(map[int][]int64) // partition -> current block sizes
	if err := d.m.WithFS(func(fs *dfs.FS) error {
		f := fs.File(rec.InputFile)
		if f == nil {
			return fmt.Errorf("dmr: resync: input %q missing", rec.InputFile)
		}
		for p := range relayout {
			if p < 0 || p >= len(f.Partitions) {
				return fmt.Errorf("dmr: resync: %q has no partition %d", rec.InputFile, p)
			}
			var sizes []int64
			for _, b := range f.Partitions[p].Blocks {
				sizes = append(sizes, b.Size)
			}
			layout[p] = sizes
		}
		return nil
	}); err != nil {
		return nil, err
	}

	var table []lineage.MapperMeta
	var rerun []int
	for _, m := range rec.Mappers {
		if relayout[m.InputPartition] {
			continue // replaced below
		}
		nm := m
		nm.Index = len(table)
		if rerunOld[m.Index] {
			rerun = append(rerun, nm.Index)
		}
		table = append(table, nm)
	}
	parts := make([]int, 0, len(relayout))
	for p := range relayout {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	for _, p := range parts {
		for b, sz := range layout[p] {
			nm := lineage.MapperMeta{Index: len(table), InputPartition: p, InputBlock: b, InputBytes: sz, Node: -1}
			rerun = append(rerun, nm.Index)
			table = append(table, nm)
		}
	}
	rec.Mappers = table
	sort.Ints(rerun)
	return rerun, nil
}

// reclaimThrough applies checkpoint reclamation (Section IV-C) after job
// `checkpoint` completed with a replicated output.
func (d *Driver) reclaimThrough(checkpoint int) error {
	r, err := core.ReclaimableBefore(d.ch, checkpoint)
	if err != nil {
		return err
	}
	core.ApplyReclamation(d.ch, r)
	d.m.ReclaimMapOutputs(r.MapOutputJobs)
	for _, f := range r.Files {
		d.m.DropFileEverywhere(f)
	}
	return nil
}

// Evict releases at least needBytes of persisted map outputs across the
// cluster, using the wave-granularity, cheapest-expected-recomputation
// policy of Section IV-C. Later recoveries transparently re-run the
// evicted mappers. Call between jobs (not while a run is active).
func (d *Driver) Evict(needBytes int64) error {
	alive := d.m.AliveWorkers()
	slots := d.m.SlotsPerWorker()
	plan, err := core.PlanEviction(d.ch, needBytes, len(alive)*slots)
	if err != nil {
		return err
	}
	var refs []MapOutRef
	for _, w := range plan.Waves {
		rec := d.ch.Job(w.Job)
		for _, mi := range w.Mappers {
			m := rec.Mappers[mi]
			refs = append(refs, MapOutRef{Job: w.Job, Part: m.InputPartition, Block: m.InputBlock})
		}
	}
	core.ApplyEviction(d.ch, plan)
	d.m.EvictMapOutputs(refs)
	return nil
}

// OutputDigests fingerprints the final job's output partitions, reading
// blocks from their live replicas.
func (d *Driver) OutputDigests() ([]workload.Digest, error) {
	_, out := jobFiles(d.cfg.Jobs)
	exists := false
	_ = d.m.WithFS(func(fs *dfs.FS) error { exists = fs.File(out) != nil; return nil })
	if !exists {
		return nil, fmt.Errorf("dmr: chain output %q missing (chain not run?)", out)
	}
	digests := make([]workload.Digest, d.cfg.NumReducers)
	for p := range digests {
		dg, err := d.m.PartitionDigest(out, p)
		if err != nil {
			return nil, err
		}
		digests[p] = dg
	}
	return digests, nil
}
