package dmr

import (
	"testing"

	"rcmp/internal/workload"
)

func TestStoreBlockRoundTrip(t *testing.T) {
	s := newStore()
	rows := workload.Generate(10, 1)
	s.PutBlock("f", 2, 3, rows)

	if !s.HasBlock("f", 2, 3) {
		t.Fatal("HasBlock = false after Put")
	}
	got, err := s.GetBlock("f", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10", len(got))
	}
	if _, err := s.GetBlock("f", 2, 4); err == nil {
		t.Fatal("missing block read succeeded")
	}
	if s.HasBlock("g", 2, 3) {
		t.Fatal("HasBlock = true for other file")
	}
}

func TestStoreDropPartitionAndFile(t *testing.T) {
	s := newStore()
	rows := workload.Generate(5, 2)
	s.PutBlock("f", 0, 0, rows)
	s.PutBlock("f", 0, 1, rows)
	s.PutBlock("f", 1, 0, rows)
	s.PutBlock("g", 0, 0, rows)

	s.DropPartition("f", 0)
	if s.HasBlock("f", 0, 0) || s.HasBlock("f", 0, 1) {
		t.Fatal("DropPartition left blocks behind")
	}
	if !s.HasBlock("f", 1, 0) || !s.HasBlock("g", 0, 0) {
		t.Fatal("DropPartition dropped unrelated blocks")
	}

	s.DropFile("f")
	if s.HasBlock("f", 1, 0) {
		t.Fatal("DropFile left a block behind")
	}
	if !s.HasBlock("g", 0, 0) {
		t.Fatal("DropFile dropped another file's block")
	}
}

func TestStoreMapOutputSplitSlices(t *testing.T) {
	s := newStore()
	const reducers = 4
	buckets := make([][]workload.Record, reducers)
	rows := workload.Generate(200, 3)
	for _, r := range rows {
		red := reducerOfRecord(r, reducers)
		buckets[red] = append(buckets[red], r)
	}
	s.PutMapOutput(1, 0, 0, buckets)

	for red := 0; red < reducers; red++ {
		whole, err := s.MapOutputSlice(1, 0, 0, red, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The union of k split slices must equal the whole bucket exactly.
		const k = 3
		var merged []workload.Record
		for split := 0; split < k; split++ {
			part, err := s.MapOutputSlice(1, 0, 0, red, split, k)
			if err != nil {
				t.Fatal(err)
			}
			merged = append(merged, part...)
		}
		if !workload.DigestRecords(merged).Equal(workload.DigestRecords(whole)) {
			t.Fatalf("reducer %d: split union differs from whole bucket", red)
		}
	}

	if _, err := s.MapOutputSlice(2, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("missing map output read succeeded")
	}
	if _, err := s.MapOutputSlice(1, 0, 0, reducers, 0, 1); err == nil {
		t.Fatal("out-of-range reducer read succeeded")
	}
}

func TestStoreDropMapOutputs(t *testing.T) {
	s := newStore()
	b := [][]workload.Record{workload.Generate(3, 4)}
	s.PutMapOutput(1, 0, 0, b)
	s.PutMapOutput(2, 0, 0, b)
	s.PutMapOutput(3, 1, 2, b)

	s.DropMapOutputs([]int{1, 3})
	if _, err := s.MapOutputSlice(1, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("job 1 output survived drop")
	}
	if _, err := s.MapOutputSlice(3, 1, 2, 0, 0, 1); err == nil {
		t.Fatal("job 3 output survived drop")
	}
	if _, err := s.MapOutputSlice(2, 0, 0, 0, 0, 1); err != nil {
		t.Fatal("job 2 output dropped erroneously")
	}
}

func TestStoreStats(t *testing.T) {
	s := newStore()
	s.PutBlock("a", 0, 0, workload.Generate(7, 5))
	s.PutBlock("b", 0, 0, workload.Generate(3, 6))
	s.PutMapOutput(1, 0, 0, nil)
	st := s.Stats()
	if st.Blocks != 2 || st.BlockRecords != 10 || st.MapOutputs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Files) != 2 || st.Files[0] != "a" || st.Files[1] != "b" {
		t.Fatalf("files = %v", st.Files)
	}
}

func TestBlockDigestMatchesRecords(t *testing.T) {
	s := newStore()
	rows := workload.Generate(42, 7)
	s.PutBlock("f", 0, 0, rows)
	d, err := s.BlockDigest("f", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(workload.DigestRecords(rows)) {
		t.Fatal("digest mismatch")
	}
	if _, err := s.BlockDigest("f", 0, 1); err == nil {
		t.Fatal("digest of missing block succeeded")
	}
}
