package dmr

import (
	"errors"
	"testing"
	"time"

	"rcmp/internal/workload"
)

// cluster is a test harness: one master plus n workers on loopback TCP.
type cluster struct {
	m       *Master
	workers []*Worker
}

func startCluster(t *testing.T, n, slots, blockRecords int) *cluster {
	t.Helper()
	m, err := StartMaster(MasterConfig{SlotsPerWorker: slots, Timing: TestTiming()}, blockRecords)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{m: m}
	t.Cleanup(func() {
		for _, w := range c.workers {
			w.Kill()
		}
		m.Close()
	})
	for i := 0; i < n; i++ {
		w, err := StartWorker(WorkerConfig{ID: i, MasterAddr: m.Addr(), Timing: TestTiming()})
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
	}
	if got := len(m.AliveWorkers()); got != n {
		t.Fatalf("alive workers = %d, want %d", got, n)
	}
	return c
}

// killAndAwaitDetection kills worker id and blocks until the master has
// declared it dead (the synchronous "failure between jobs" injection).
func (c *cluster) killAndAwaitDetection(t *testing.T, id int) {
	t.Helper()
	c.workers[id].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.m.FailedNodes()[id] {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("master did not detect death of worker %d", id)
}

// runChain builds a driver, loads input, and runs the chain.
func runChain(t *testing.T, c *cluster, cfg ChainConfig) *Driver {
	t.Helper()
	d, err := NewDriver(c.m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadInput(); err != nil {
		t.Fatal(err)
	}
	if err := d.RunChain(); err != nil {
		t.Fatal(err)
	}
	return d
}

// referenceDigests runs the same chain failure-free on a fresh cluster and
// returns its output digests.
func referenceDigests(t *testing.T, n, slots, blockRecords int, cfg ChainConfig) []workload.Digest {
	t.Helper()
	cfg.AfterJob = nil
	c := startCluster(t, n, slots, blockRecords)
	d := runChain(t, c, cfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	return digs
}

func assertDigestsEqual(t *testing.T, got, want []workload.Digest) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("partition count %d, want %d", len(got), len(want))
	}
	for p := range got {
		if !got[p].Equal(want[p]) {
			t.Errorf("partition %d digest %v, want %v", p, got[p], want[p])
		}
	}
}

func totalRecords(digs []workload.Digest) int {
	n := 0
	for _, d := range digs {
		n += d.Count
	}
	return n
}

var baseCfg = ChainConfig{
	Jobs:                4,
	NumReducers:         8,
	RecordsPerPartition: 120,
	Seed:                7,
}

func TestChainNoFailure(t *testing.T) {
	c := startCluster(t, 4, 2, 40)
	d := runChain(t, c, baseCfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	// The chain UDFs are 1:1, so every input record flows to the output.
	if got, want := totalRecords(digs), 4*120; got != want {
		t.Fatalf("output records = %d, want %d", got, want)
	}
	if d.StartedRuns != baseCfg.Jobs {
		t.Fatalf("StartedRuns = %d, want %d", d.StartedRuns, baseCfg.Jobs)
	}
	if d.RecoveryEpisodes != 0 {
		t.Fatalf("RecoveryEpisodes = %d, want 0", d.RecoveryEpisodes)
	}
}

func TestChainDeterministicAcrossClusters(t *testing.T) {
	a := referenceDigests(t, 4, 2, 40, baseCfg)
	b := referenceDigests(t, 4, 2, 40, baseCfg)
	assertDigestsEqual(t, b, a)
}

func TestMapOutputsPersistAcrossJobs(t *testing.T) {
	c := startCluster(t, 3, 2, 40)
	runChain(t, c, ChainConfig{Jobs: 3, NumReducers: 6, RecordsPerPartition: 80, Seed: 1})
	persisted := 0
	for _, w := range c.workers {
		persisted += w.StoreStats().MapOutputs
	}
	// Every job's mappers persist: job 1 has 2 blocks per partition (80/40)
	// over 3 partitions = 6 mappers; jobs 2..3 have one mapper per written
	// output block. At minimum one map output per job must exist.
	if persisted < 3 {
		t.Fatalf("persisted map outputs = %d, want >= 3 (one per job)", persisted)
	}
}

func TestSingleFailureBetweenJobsNoSplit(t *testing.T) {
	want := referenceDigests(t, 5, 2, 40, baseCfg)

	c := startCluster(t, 5, 2, 40)
	cfg := baseCfg
	cfg.AfterJob = func(job int) {
		if job == 2 {
			c.killAndAwaitDetection(t, 1)
		}
	}
	d := runChain(t, c, cfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if d.RecoveryEpisodes != 1 {
		t.Fatalf("RecoveryEpisodes = %d, want 1", d.RecoveryEpisodes)
	}
	if d.RecomputedReducers == 0 {
		t.Fatal("no reducers recomputed despite data loss")
	}
	if d.StartedRuns <= baseCfg.Jobs {
		t.Fatalf("StartedRuns = %d, want > %d (recomputation runs count)", d.StartedRuns, baseCfg.Jobs)
	}
	t.Logf("runs=%d recomputedMappers=%d recomputedReducers=%d remoteReads=%d",
		d.StartedRuns, d.RecomputedMappers, d.RecomputedReducers, d.RemoteReads)
}

func TestSingleFailureWithSplit(t *testing.T) {
	want := referenceDigests(t, 5, 2, 40, baseCfg)

	c := startCluster(t, 5, 2, 40)
	cfg := baseCfg
	cfg.Split = true // ratio 0 = one split per surviving worker
	cfg.AfterJob = func(job int) {
		if job == 3 {
			c.killAndAwaitDetection(t, 2)
		}
	}
	d := runChain(t, c, cfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)

	// A split recomputation writes a regenerated partition from several
	// workers; the lineage must show multi-node reducer outputs somewhere.
	split := false
	for j := 1; j <= d.Chain().Len(); j++ {
		for _, r := range d.Chain().Job(j).Reducers {
			if len(r.Nodes) > 1 {
				split = true
			}
		}
	}
	if !split {
		t.Fatal("split recomputation left no multi-node reducer outputs in the lineage")
	}
}

func TestFailureLateInChainCascadesDeep(t *testing.T) {
	cfg := ChainConfig{Jobs: 5, NumReducers: 6, RecordsPerPartition: 80, Seed: 3, Split: true}
	want := referenceDigests(t, 4, 2, 40, cfg)

	c := startCluster(t, 4, 2, 40)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		if job == 4 { // lose data with most of the chain persisted
			c.killAndAwaitDetection(t, 0)
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	// The cascade must have recomputed several jobs (lost reducer outputs
	// exist in every completed job the dead worker touched).
	if d.RecomputedReducers < 2 {
		t.Fatalf("RecomputedReducers = %d, want a multi-job cascade", d.RecomputedReducers)
	}
}

func TestDoubleFailureSequential(t *testing.T) {
	cfg := ChainConfig{Jobs: 5, NumReducers: 8, RecordsPerPartition: 80, Seed: 5, Split: true}
	want := referenceDigests(t, 6, 2, 40, cfg)

	c := startCluster(t, 6, 2, 40)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		switch job {
		case 2:
			c.killAndAwaitDetection(t, 1)
		case 4:
			c.killAndAwaitDetection(t, 3)
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if d.RecoveryEpisodes != 2 {
		t.Fatalf("RecoveryEpisodes = %d, want 2", d.RecoveryEpisodes)
	}
}

func TestFailureMidJobCancelsAndRecovers(t *testing.T) {
	cfg := ChainConfig{Jobs: 4, NumReducers: 8, RecordsPerPartition: 150, Seed: 9, Split: true}
	want := referenceDigests(t, 5, 1, 30, cfg)

	c := startCluster(t, 5, 1, 30)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		if job == 2 {
			// Kill asynchronously so the death lands while job 3 is running:
			// the master must cancel the run and the driver must recover.
			go func() {
				time.Sleep(5 * time.Millisecond)
				c.workers[4].Kill()
			}()
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if !c.m.FailedNodes()[4] {
		t.Fatal("worker 4 was never declared dead")
	}
}

func TestNestedFailureDuringRecovery(t *testing.T) {
	cfg := ChainConfig{Jobs: 5, NumReducers: 8, RecordsPerPartition: 120, Seed: 11, Split: true}
	want := referenceDigests(t, 6, 1, 40, cfg)

	c := startCluster(t, 6, 1, 40)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		if job == 4 {
			c.killAndAwaitDetection(t, 2)
			// Second kill slightly later, aimed at the recovery window (the
			// FAIL 4,7-style nested case). Wherever it lands, the driver
			// must fold it in and still produce correct output.
			go func() {
				time.Sleep(20 * time.Millisecond)
				c.workers[5].Kill()
			}()
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	// The second kill is asynchronous and may land so late in the run that
	// the chain completes before worker 5's heartbeats go stale; detection
	// keeps running after RunChain, so wait for it rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for !c.m.FailedNodes()[5] && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	failed := c.m.FailedNodes()
	if !failed[2] || !failed[5] {
		t.Fatalf("failed set %v, want workers 2 and 5 dead", failed)
	}
}

func TestHybridReplicationSurvivesWithoutDeepCascade(t *testing.T) {
	cfg := ChainConfig{
		Jobs: 6, NumReducers: 6, RecordsPerPartition: 80, Seed: 13,
		HybridEveryK: 2, HybridRepl: 2, Split: true,
	}
	want := referenceDigests(t, 5, 2, 40, cfg)

	c := startCluster(t, 5, 2, 40)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		if job == 5 {
			c.killAndAwaitDetection(t, 1)
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)

	// Replication at jobs 2 and 4 bounds the cascade: a failure after job 5
	// must not recompute jobs 1..3 (job 4's replicated output survives on
	// the second replica). The cascade may touch jobs 4..5 only.
	if d.Chain().Job(4) == nil {
		t.Fatal("lineage lost job 4")
	}
	maxSteps := 2 * cfg.NumReducers // jobs 4 and 5 at most
	if d.RecomputedReducers > maxSteps {
		t.Fatalf("RecomputedReducers = %d, want <= %d (checkpoint should bound cascade)",
			d.RecomputedReducers, maxSteps)
	}
}

func TestReclaimAtCheckpoints(t *testing.T) {
	cfg := ChainConfig{
		Jobs: 6, NumReducers: 6, RecordsPerPartition: 80, Seed: 17,
		HybridEveryK: 3, HybridRepl: 2, ReclaimAtCheckpoints: true,
	}
	want := referenceDigests(t, 4, 2, 40, ChainConfig{
		Jobs: 6, NumReducers: 6, RecordsPerPartition: 80, Seed: 17,
	})

	c := startCluster(t, 4, 2, 40)
	d := runChain(t, c, cfg)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	// Hybrid replication and reclamation must not change the data.
	assertDigestsEqual(t, digs, want)

	// Intermediate files before the last checkpoint must be gone from the
	// workers ("out1", "out2" precede checkpoint 3).
	for _, w := range c.workers {
		for _, f := range w.StoreStats().Files {
			if f == "out1" || f == "out2" {
				t.Fatalf("worker %d still stores reclaimed file %q", w.ID(), f)
			}
		}
	}
}

func TestReplicatedChainSurvivesWithoutRecomputation(t *testing.T) {
	// With OutputRepl=2 (the REPL-2 baseline), losing one worker between
	// jobs destroys no partition, so the driver plans an empty cascade.
	cfg := ChainConfig{Jobs: 4, NumReducers: 6, RecordsPerPartition: 80, Seed: 19, OutputRepl: 2}
	want := referenceDigests(t, 5, 2, 40, cfg)

	c := startCluster(t, 5, 2, 40)
	cfg2 := cfg
	cfg2.AfterJob = func(job int) {
		if job == 2 {
			c.killAndAwaitDetection(t, 3)
		}
	}
	d := runChain(t, c, cfg2)
	digs, err := d.OutputDigests()
	if err != nil {
		t.Fatal(err)
	}
	assertDigestsEqual(t, digs, want)
	if d.RecomputedReducers != 0 {
		t.Fatalf("RecomputedReducers = %d, want 0: replication should cover the loss", d.RecomputedReducers)
	}
}

func TestRegisterDuplicateAndDeadIDRejected(t *testing.T) {
	c := startCluster(t, 2, 1, 40)

	// Same live ID again.
	if _, err := StartWorker(WorkerConfig{ID: 0, MasterAddr: c.m.Addr(), Timing: TestTiming()}); err == nil {
		t.Fatal("duplicate registration succeeded")
	}

	// A dead ID must not be resurrected.
	c.killAndAwaitDetection(t, 1)
	if _, err := StartWorker(WorkerConfig{ID: 1, MasterAddr: c.m.Addr(), Timing: TestTiming()}); err == nil {
		t.Fatal("dead ID re-registration succeeded")
	}

	// A fresh ID joins fine.
	w, err := StartWorker(WorkerConfig{ID: 2, MasterAddr: c.m.Addr(), Timing: TestTiming()})
	if err != nil {
		t.Fatal(err)
	}
	c.workers = append(c.workers, w)
}

func TestDetectionTimeoutDeclaresDeath(t *testing.T) {
	c := startCluster(t, 3, 1, 40)
	start := time.Now()
	c.killAndAwaitDetection(t, 0)
	elapsed := time.Since(start)
	tt := TestTiming()
	if elapsed < tt.DetectionTimeout/2 {
		t.Fatalf("death declared after %v, faster than plausible for timeout %v", elapsed, tt.DetectionTimeout)
	}
	if len(c.m.AliveWorkers()) != 2 {
		t.Fatalf("alive = %v, want 2 workers", c.m.AliveWorkers())
	}
}

func TestRunJobErrorsWithoutWorkers(t *testing.T) {
	m, err := StartMaster(MasterConfig{Timing: TestTiming()}, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.RunJob(JobSpec{ID: 1, InFile: "x", OutFile: "y", NumReducers: 1}); err == nil {
		t.Fatal("RunJob without workers succeeded")
	}
	if _, err := NewDriver(m, baseCfg); err == nil {
		t.Fatal("NewDriver without workers succeeded")
	}
}

func TestDriverValidation(t *testing.T) {
	c := startCluster(t, 1, 1, 10)
	bad := []ChainConfig{
		{Jobs: 0, NumReducers: 1},
		{Jobs: 1, NumReducers: 0},
		{Jobs: 1, NumReducers: 1, ReclaimAtCheckpoints: true},
		{Jobs: 1, NumReducers: 1, OutputRepl: 2, HybridEveryK: 2},
	}
	for i, cfg := range bad {
		if _, err := NewDriver(c.m, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestUnrecoverableWhenInputLost(t *testing.T) {
	// Input replication 1 on a 3-worker cluster: killing an input holder
	// makes the chain unrecoverable and the driver must say so.
	c := startCluster(t, 3, 2, 40)
	d, err := NewDriver(c.m, ChainConfig{
		Jobs: 3, NumReducers: 4, RecordsPerPartition: 80, InputRepl: 1, Seed: 23,
		AfterJob: nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadInput(); err != nil {
		t.Fatal(err)
	}
	c.killAndAwaitDetection(t, 0)
	err = d.RunChain()
	if err == nil {
		t.Fatal("chain succeeded with its only input replica lost")
	}
	var loss *DataLossError
	if errors.As(err, &loss) {
		t.Fatalf("driver surfaced raw DataLossError %v; want an unrecoverable-plan error", err)
	}
}
