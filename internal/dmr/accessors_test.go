package dmr

import (
	"strings"
	"testing"
	"time"
)

func TestAccessorsAndTeardown(t *testing.T) {
	c := startCluster(t, 2, 1, 20)
	d := runChain(t, c, ChainConfig{Jobs: 2, NumReducers: 3, RecordsPerPartition: 40, Seed: 61})
	_ = d

	w := c.workers[0]
	if w.ID() != 0 {
		t.Fatalf("ID = %d", w.ID())
	}
	if w.TasksRun() == 0 {
		t.Fatal("worker 0 ran no tasks in a 2-worker chain")
	}
	if w.RemoteReads() < 0 {
		t.Fatal("negative remote reads")
	}
	addr, err := c.m.WorkerAddr(0)
	if err != nil || addr != w.Addr() {
		t.Fatalf("WorkerAddr = %q, %v; want %q", addr, err, w.Addr())
	}
	if _, err := c.m.WorkerAddr(99); err == nil {
		t.Fatal("WorkerAddr(99) succeeded")
	}

	loss := &DataLossError{Victims: []int{3, 5}}
	if !strings.Contains(loss.Error(), "[3 5]") {
		t.Fatalf("DataLossError text %q", loss.Error())
	}

	// Graceful shutdown is idempotent and equivalent to Kill.
	w.Shutdown()
	w.Shutdown()
	deadline := time.Now().Add(5 * time.Second)
	for !c.m.FailedNodes()[0] {
		if time.Now().After(deadline) {
			t.Fatal("shutdown worker never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Closing the master twice is safe; runs are rejected afterwards.
	c.m.Close()
	c.m.Close()
	if _, err := c.m.RunJob(JobSpec{ID: 1, InFile: "x", OutFile: "y", NumReducers: 1}); err == nil {
		t.Fatal("RunJob on closed master succeeded")
	}
}

func TestTimingDefaults(t *testing.T) {
	var zero Timing
	d := zero.withDefaults()
	def := DefaultTiming()
	if d != def {
		t.Fatalf("withDefaults() = %+v, want %+v", d, def)
	}
	custom := Timing{HeartbeatInterval: time.Second}
	got := custom.withDefaults()
	if got.HeartbeatInterval != time.Second {
		t.Fatal("explicit heartbeat overridden")
	}
	if got.DetectionTimeout != def.DetectionTimeout {
		t.Fatal("unset detection timeout not defaulted")
	}
}
