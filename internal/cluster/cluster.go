// Package cluster models a collocated data-analytics cluster: N nodes that
// each compute (mapper/reducer slots) and store data (one disk), joined by
// an edge NIC per node and a shared, possibly oversubscribed core switch.
//
// This is the substrate the RCMP paper runs on (STIC and DCO, Section V-A).
// The model captures the properties that drive the paper's results:
//
//   - disk throughput, including degradation under concurrent streams;
//   - NIC line rate per node, in each direction;
//   - core bandwidth = sum of NIC rates / oversubscription factor;
//   - per-node mapper and reducer slot counts;
//   - node failure removing both compute and storage (collocation).
package cluster

import (
	"fmt"
	"sort"

	"rcmp/internal/des"
	"rcmp/internal/flow"
)

// Config describes cluster hardware and scheduling capacity.
type Config struct {
	Name  string
	Nodes int

	MapSlots    int // concurrent mapper tasks per node
	ReduceSlots int // concurrent reducer tasks per node

	DiskBW           float64 // bytes/s sequential per-disk throughput
	DiskSeekPenalty  float64 // concurrency penalty factor (see flow.Resource)
	DiskPenaltyCap   float64 // bound on total seek degradation (see flow.Resource)
	NICBW            float64 // bytes/s per direction per node
	Oversubscription float64 // core capacity = Nodes*NICBW/Oversubscription

	TaskStartup des.Time // fixed scheduling+JVM cost per task launch
	MapCPU      float64  // bytes/s a mapper's UDF can process (0 = infinite)
	ReduceCPU   float64  // bytes/s a reducer's UDF can process (0 = infinite)

	// ReplicaWriteAmp is the disk-work amplification of replica copies
	// arriving over the network, relative to a local sequential write.
	// HDFS replica reception can interleave block data, checksums and
	// metadata and lose sequentiality (Shafer et al., ISPASS 2010 — the
	// paper's [22]); raise this above 1 to model that. Zero defaults to 1
	// (replicated bytes cost exactly their size at the receiving disk).
	ReplicaWriteAmp float64

	// ShuffleTransferDelay adds a fixed delay at the end of each shuffle
	// transfer. The paper uses 10s here to emulate a slow network
	// (SLOW SHUFFLE, Section V-D).
	ShuffleTransferDelay des.Time

	// ShuffleDiskFactor is the fraction of shuffle bytes that actually
	// touch the disks at each end. Freshly written map outputs are mostly
	// served from the page cache, and reducers merge fetched segments in
	// memory when they fit (both clusters in the paper have far more RAM
	// than per-node job data), so the shuffle is predominantly a network
	// operation. Zero defaults to 0.25.
	ShuffleDiskFactor float64

	// FailureDetectionTimeout is how long after a node dies the master
	// notices (paper: 30s, plus failures injected 15s into a job).
	FailureDetectionTimeout des.Time

	// NodeDiskScale makes selected nodes stragglers: node i's disk runs at
	// DiskBW * NodeDiskScale[i] (e.g. 0.3 for a degraded drive). Nodes not
	// in the map run at full speed. Used by the speculative-execution
	// experiments (paper Section III-A).
	NodeDiskScale map[int]float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster %q: Nodes=%d, need >0", c.Name, c.Nodes)
	case c.MapSlots <= 0 || c.ReduceSlots <= 0:
		return fmt.Errorf("cluster %q: slots %d-%d, need >0", c.Name, c.MapSlots, c.ReduceSlots)
	case c.DiskBW <= 0 || c.NICBW <= 0:
		return fmt.Errorf("cluster %q: non-positive bandwidth", c.Name)
	case c.Oversubscription < 1:
		return fmt.Errorf("cluster %q: oversubscription %v < 1", c.Name, c.Oversubscription)
	}
	return nil
}

// Node is one compute+storage machine.
type Node struct {
	ID   int
	Disk *flow.Resource
	Up   *flow.Resource // NIC transmit
	Down *flow.Resource // NIC receive

	failed   bool
	failedAt des.Time
}

// Failed reports whether the node has failed.
func (n *Node) Failed() bool { return n.failed }

// FailedAt returns the time of failure (meaningful only if Failed).
func (n *Node) FailedAt() des.Time { return n.failedAt }

// Cluster is a live topology bound to a simulator and flow network.
type Cluster struct {
	Cfg   Config
	Sim   *des.Simulator
	Net   *flow.Network
	Core  *flow.Resource
	nodes []*Node

	// alive is the incrementally maintained set of non-failed node IDs:
	// Fail swap-removes in O(1) via alivePos (node ID -> slot in alive, -1
	// when dead) and marks the slice unsorted; Alive() restores ascending
	// order lazily, once per failure pulse, so a pulse killing k nodes
	// costs O(k + a log a) instead of the old O(k*n) rebuild scans.
	alive       []int
	alivePos    []int
	aliveSorted bool

	// Pooled shuffle-side resources for the aggregated shuffle tier (see
	// mapreduce's per-destination aggregated trunks): the source NICs,
	// destination NICs and disks of all alive nodes collapsed into one
	// resource each, capacities maintained from the alive count on Fail
	// and Reset. Unused (zero members) unless the aggregated shuffle is
	// active, so they cost nothing at the exact tier.
	ShufSrc  *flow.Resource
	ShufDst  *flow.Resource
	ShufDisk *flow.Resource

	// usesBuf backs the *UsesScratch path helpers: one shared buffer,
	// valid until the next *UsesScratch call. See ReadUsesScratch.
	usesBuf [5]flow.Use

	// pulses holds the registered perturbation times (failure injections,
	// detection deadlines) that have not passed yet — the cluster's
	// contribution to the fast-forward quiescence horizon. Kept as an
	// unsorted min-tracked slice: registrations per chain are few (one per
	// injection plus one per detection), so a linear min scan on query is
	// cheaper than keeping a heap. Stale entries are pruned on query.
	pulses []des.Time
}

// RegisterPulse records an upcoming externally driven perturbation at the
// given virtual time — a failure pulse or a detection deadline. The
// fast-forward engine consults NextPulseAt as a second, model-level bound
// on how far it may skip, independent of the event queue's own horizon.
func (c *Cluster) RegisterPulse(at des.Time) {
	c.pulses = append(c.pulses, at)
}

// NextPulseAt returns the earliest registered pulse strictly after now, or
// des.Forever when none is pending. Entries at or before now are dropped:
// their perturbation has fired and been handled exactly by then.
func (c *Cluster) NextPulseAt(now des.Time) des.Time {
	next := des.Forever
	kept := c.pulses[:0]
	for _, at := range c.pulses {
		if at <= now {
			continue
		}
		kept = append(kept, at)
		if at < next {
			next = at
		}
	}
	c.pulses = kept
	return next
}

// New builds a cluster. It panics on an invalid config: configs are
// programmer-supplied constants, not runtime input.
func New(sim *des.Simulator, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{
		Cfg: cfg,
		Sim: sim,
		Net: flow.NewNetwork(sim),
		Core: &flow.Resource{
			Name:     cfg.Name + "/core",
			Capacity: float64(cfg.Nodes) * cfg.NICBW / cfg.Oversubscription,
		},
	}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:   i,
			Disk: &flow.Resource{Name: fmt.Sprintf("%s/n%d/disk", cfg.Name, i), Capacity: c.diskBW(i), SeekPenalty: cfg.DiskSeekPenalty, PenaltyCap: cfg.DiskPenaltyCap},
			Up:   &flow.Resource{Name: fmt.Sprintf("%s/n%d/up", cfg.Name, i), Capacity: cfg.NICBW},
			Down: &flow.Resource{Name: fmt.Sprintf("%s/n%d/down", cfg.Name, i), Capacity: cfg.NICBW},
		})
	}
	c.ShufSrc = &flow.Resource{Name: cfg.Name + "/shuffle-src"}
	c.ShufDst = &flow.Resource{Name: cfg.Name + "/shuffle-dst"}
	c.ShufDisk = &flow.Resource{Name: cfg.Name + "/shuffle-disk"}
	c.initAlive()
	return c
}

func (c *Cluster) diskBW(i int) float64 {
	bw := c.Cfg.DiskBW
	if s, ok := c.Cfg.NodeDiskScale[i]; ok && s > 0 {
		bw *= s
	}
	return bw
}

// Reset returns the cluster to its just-built state — all nodes alive,
// every resource idle, the flow network empty — while keeping the node
// and resource structs, so a reused cluster behaves exactly like a fresh
// one without reconstructing the topology. The caller must reset the
// bound simulator first (the network's completion event lives there).
func (c *Cluster) Reset() {
	c.Net.Reset()
	for i, n := range c.nodes {
		n.failed = false
		n.failedAt = 0
		resetResource(n.Disk, c.diskBW(i))
		resetResource(n.Up, c.Cfg.NICBW)
		resetResource(n.Down, c.Cfg.NICBW)
	}
	resetResource(c.Core, float64(c.Cfg.Nodes)*c.Cfg.NICBW/c.Cfg.Oversubscription)
	c.ShufSrc.ResetUsage()
	c.ShufDst.ResetUsage()
	c.ShufDisk.ResetUsage()
	c.pulses = c.pulses[:0]
	c.initAlive()
}

// resetResource clears a resource's live bookkeeping. Generation stamps
// are left alone: the network's generation counter is monotonic across
// Reset, so stale stamps can never collide with a future pass.
func resetResource(r *flow.Resource, capacity float64) {
	r.Capacity = capacity
	r.ResetUsage()
}

// initAlive restores the all-alive state: identity alive list, identity
// position index, pool capacities at full cluster size.
func (c *Cluster) initAlive() {
	n := len(c.nodes)
	if cap(c.alive) < n {
		c.alive = make([]int, n)
		c.alivePos = make([]int, n)
	}
	c.alive = c.alive[:n]
	c.alivePos = c.alivePos[:n]
	for i := range c.alive {
		c.alive[i] = i
		c.alivePos[i] = i
	}
	c.aliveSorted = true
	c.sizeShufflePools()
}

// sizeShufflePools recomputes the aggregated shuffle pools from the alive
// count. A mid-run capacity change is picked up by the next water-fill
// that touches the pools — exactly when the next shuffle flow starts,
// aborts or completes, which any failure pulse triggers via the stalled
// fetches it aborts. The disk pool is sized at the seek-penalty-capped
// throughput: an aggregated shuffle by construction runs many concurrent
// streams per disk, so the capped effective rate — not the single-stream
// rate — is the correct asymptotic for the pooled capacity (the exact
// tier reaches the same floor through per-disk concurrency counts).
func (c *Cluster) sizeShufflePools() {
	a := float64(len(c.alive))
	c.ShufSrc.Capacity = a * c.Cfg.NICBW
	c.ShufDst.Capacity = a * c.Cfg.NICBW
	disk := c.Cfg.DiskBW
	if c.Cfg.DiskPenaltyCap > 0 {
		disk /= 1 + c.Cfg.DiskPenaltyCap
	}
	c.ShufDisk.Capacity = a * disk
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// NumNodes returns the configured node count (alive or not).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Alive returns the IDs of non-failed nodes, ascending. The slice is a
// cached view maintained incrementally on Fail: callers must treat it as
// read-only and must not retain it across a Fail or Reset. Fail leaves
// the slice unsorted (swap-remove); the ascending order every scheduler
// sweep depends on is restored here, once per failure pulse.
func (c *Cluster) Alive() []int {
	if !c.aliveSorted {
		sort.Ints(c.alive)
		for i, id := range c.alive {
			c.alivePos[id] = i
		}
		c.aliveSorted = true
	}
	return c.alive
}

// NumAlive returns the count of non-failed nodes.
func (c *Cluster) NumAlive() int { return len(c.alive) }

// Fail marks a node dead at the current simulated time. Storage and compute
// are both lost (collocated cluster). Fail is idempotent and O(1): the
// alive set is swap-removed in place (re-sorted lazily by Alive), so a
// pulse killing k nodes costs O(k) here, not O(k·n) rebuild scans.
func (c *Cluster) Fail(id int) {
	n := c.nodes[id]
	if n.failed {
		return
	}
	n.failed = true
	n.failedAt = c.Sim.Now()
	i := c.alivePos[id]
	last := len(c.alive) - 1
	if i != last {
		moved := c.alive[last]
		c.alive[i] = moved
		c.alivePos[moved] = i
		c.aliveSorted = false
	}
	c.alive = c.alive[:last]
	c.alivePos[id] = -1
	c.sizeShufflePools()
}

// TransferUses returns the resource path for moving bytes from node src to
// node dst, reading from src's disk and writing to dst's disk.
//
// A local transfer (src == dst) touches the single disk twice: once for the
// read and once for the write, hence weight 2.
func (c *Cluster) TransferUses(src, dst int) []flow.Use {
	if src == dst {
		return []flow.Use{{R: c.nodes[src].Disk, Weight: 2}}
	}
	return []flow.Use{
		{R: c.nodes[src].Disk, Weight: 1},
		{R: c.nodes[src].Up, Weight: 1},
		{R: c.Core, Weight: 1},
		{R: c.nodes[dst].Down, Weight: 1},
		{R: c.nodes[dst].Disk, Weight: 1},
	}
}

// ShuffleUses returns the path for a reducer on node dst fetching map
// output from node src. Disks are charged only the configured shuffle disk
// factor; the rest of the bytes move cache-to-memory across the network.
func (c *Cluster) ShuffleUses(src, dst int) []flow.Use {
	f := c.Cfg.ShuffleDiskFactor
	if f <= 0 {
		f = 0.25
	}
	if src == dst {
		return []flow.Use{{R: c.nodes[src].Disk, Weight: 2 * f}}
	}
	return []flow.Use{
		{R: c.nodes[src].Disk, Weight: f},
		{R: c.nodes[src].Up, Weight: 1},
		{R: c.Core, Weight: 1},
		{R: c.nodes[dst].Down, Weight: 1},
		{R: c.nodes[dst].Disk, Weight: f},
	}
}

// ReadUses returns the path for a task on node dst reading bytes that live
// on node src, without writing them back to dst's disk (e.g. a mapper
// streaming its input into the UDF).
func (c *Cluster) ReadUses(src, dst int) []flow.Use {
	if src == dst {
		return []flow.Use{{R: c.nodes[src].Disk, Weight: 1}}
	}
	return []flow.Use{
		{R: c.nodes[src].Disk, Weight: 1},
		{R: c.nodes[src].Up, Weight: 1},
		{R: c.Core, Weight: 1},
		{R: c.nodes[dst].Down, Weight: 1},
	}
}

// WriteUses returns the path for a task on node src writing bytes to node
// dst's disk (e.g. a replica of a reducer output). Remote writes charge the
// receiving disk the configured replica-write amplification.
func (c *Cluster) WriteUses(src, dst int) []flow.Use {
	if src == dst {
		return []flow.Use{{R: c.nodes[src].Disk, Weight: 1}}
	}
	amp := c.Cfg.ReplicaWriteAmp
	if amp <= 0 {
		amp = 1.0
	}
	return []flow.Use{
		{R: c.nodes[src].Up, Weight: 1},
		{R: c.Core, Weight: 1},
		{R: c.nodes[dst].Down, Weight: 1},
		{R: c.nodes[dst].Disk, Weight: amp},
	}
}

// The *UsesScratch variants below return a slice backed by a single
// per-cluster scratch buffer: the result is valid only until the next
// *UsesScratch call. They exist for the simulation hot path, paired with
// flow.Network.StartC (which copies the uses before returning) — the
// allocating forms above stay for callers that retain the slice, e.g.
// trunks built once per topology.

// ReadUsesScratch is ReadUses into the cluster's scratch buffer.
func (c *Cluster) ReadUsesScratch(src, dst int) []flow.Use {
	if src == dst {
		c.usesBuf[0] = flow.Use{R: c.nodes[src].Disk, Weight: 1}
		return c.usesBuf[:1]
	}
	c.usesBuf[0] = flow.Use{R: c.nodes[src].Disk, Weight: 1}
	c.usesBuf[1] = flow.Use{R: c.nodes[src].Up, Weight: 1}
	c.usesBuf[2] = flow.Use{R: c.Core, Weight: 1}
	c.usesBuf[3] = flow.Use{R: c.nodes[dst].Down, Weight: 1}
	return c.usesBuf[:4]
}

// WriteUsesScratch is WriteUses into the cluster's scratch buffer.
func (c *Cluster) WriteUsesScratch(src, dst int) []flow.Use {
	if src == dst {
		c.usesBuf[0] = flow.Use{R: c.nodes[src].Disk, Weight: 1}
		return c.usesBuf[:1]
	}
	amp := c.Cfg.ReplicaWriteAmp
	if amp <= 0 {
		amp = 1.0
	}
	c.usesBuf[0] = flow.Use{R: c.nodes[src].Up, Weight: 1}
	c.usesBuf[1] = flow.Use{R: c.Core, Weight: 1}
	c.usesBuf[2] = flow.Use{R: c.nodes[dst].Down, Weight: 1}
	c.usesBuf[3] = flow.Use{R: c.nodes[dst].Disk, Weight: amp}
	return c.usesBuf[:4]
}

// DiskUseScratch is the single-disk write path (a local map output spill)
// into the cluster's scratch buffer.
func (c *Cluster) DiskUseScratch(node int) []flow.Use {
	c.usesBuf[0] = flow.Use{R: c.nodes[node].Disk, Weight: 1}
	return c.usesBuf[:1]
}

// AggShuffleUses is the aggregated shuffle path: ShuffleUses with both
// endpoints' NICs and disks collapsed into the cluster-wide pools (source
// and destination disks each contribute the shuffle disk factor, hence
// weight 2f on the disk pool). The core switch stays the real shared
// resource, so oversubscription — the contention that matters at scale —
// is preserved exactly; per-node hot-spots are averaged out, which is the
// aggregation's documented approximation. Every aggregated fetch shares
// this one path, so the flow layer's rate-class index arbitrates the
// whole shuffle as a single unit regardless of cluster size.
func (c *Cluster) AggShuffleUses() []flow.Use {
	f := c.Cfg.ShuffleDiskFactor
	if f <= 0 {
		f = 0.25
	}
	c.usesBuf[0] = flow.Use{R: c.ShufSrc, Weight: 1}
	c.usesBuf[1] = flow.Use{R: c.Core, Weight: 1}
	c.usesBuf[2] = flow.Use{R: c.ShufDst, Weight: 1}
	c.usesBuf[3] = flow.Use{R: c.ShufDisk, Weight: 2 * f}
	return c.usesBuf[:4]
}

const (
	// MB and GB are byte sizes used throughout configs and workloads.
	MB = 1 << 20
	GB = 1 << 30
)

// STICConfig models the paper's STIC cluster slice: 10 nodes, one SATA HDD
// each, 10GbE with a moderately oversubscribed core, 30s failure detection.
// Slot counts are per experiment (SLOTS 1-1 or 2-2).
func STICConfig(mapSlots, reduceSlots int) Config {
	return Config{
		Name:                    "STIC",
		Nodes:                   10,
		MapSlots:                mapSlots,
		ReduceSlots:             reduceSlots,
		DiskBW:                  100 * MB,
		DiskSeekPenalty:         0.35,
		DiskPenaltyCap:          1.2,
		NICBW:                   1250 * MB, // 10GbE
		Oversubscription:        4,
		TaskStartup:             1.0,
		MapCPU:                  400 * MB,
		ReduceCPU:               400 * MB,
		ReplicaWriteAmp:         1.0,
		FailureDetectionTimeout: 30,
	}
}

// DCOConfig models the paper's DCO cluster: up to 60 nodes, one dedicated
// 2TB SATA HDD each, 10GbE across 3 racks, JVM reuse enabled (lower task
// startup cost).
func DCOConfig(nodes, mapSlots, reduceSlots int) Config {
	return Config{
		Name:                    "DCO",
		Nodes:                   nodes,
		MapSlots:                mapSlots,
		ReduceSlots:             reduceSlots,
		DiskBW:                  120 * MB,
		DiskSeekPenalty:         0.35,
		DiskPenaltyCap:          1.2,
		NICBW:                   1250 * MB,
		Oversubscription:        4,
		TaskStartup:             0.3, // JVM reuse enabled (Section V-A)
		MapCPU:                  600 * MB,
		ReduceCPU:               600 * MB,
		ReplicaWriteAmp:         1.0,
		FailureDetectionTimeout: 30,
	}
}
