package cluster

import (
	"testing"

	"rcmp/internal/des"
	"rcmp/internal/flow"
)

func TestShuffleUsesChargesDiskFraction(t *testing.T) {
	c := New(des.New(), STICConfig(1, 1))
	uses := c.ShuffleUses(1, 4)
	if len(uses) != 5 {
		t.Fatalf("remote shuffle crosses %d resources, want 5", len(uses))
	}
	f := c.Cfg.ShuffleDiskFactor
	if f == 0 {
		f = 0.25
	}
	if uses[0].R != c.Node(1).Disk || uses[0].Weight != f {
		t.Fatalf("src disk use %+v, want weight %v", uses[0], f)
	}
	if uses[4].R != c.Node(4).Disk || uses[4].Weight != f {
		t.Fatalf("dst disk use %+v, want weight %v", uses[4], f)
	}
	local := c.ShuffleUses(2, 2)
	if len(local) != 1 || local[0].Weight != 2*f {
		t.Fatalf("local shuffle uses %+v, want single disk at weight %v", local, 2*f)
	}
}

func TestShuffleDiskFactorConfigurable(t *testing.T) {
	cfg := STICConfig(1, 1)
	cfg.ShuffleDiskFactor = 1.0
	c := New(des.New(), cfg)
	if got := c.ShuffleUses(0, 1)[0].Weight; got != 1.0 {
		t.Fatalf("configured shuffle disk weight %v, want 1", got)
	}
}

func TestWriteUsesReplicaAmp(t *testing.T) {
	cfg := STICConfig(1, 1)
	cfg.ReplicaWriteAmp = 2.5
	c := New(des.New(), cfg)
	uses := c.WriteUses(0, 3)
	if uses[3].R != c.Node(3).Disk || uses[3].Weight != 2.5 {
		t.Fatalf("remote write dst disk %+v, want weight 2.5", uses[3])
	}
	// Local writes are sequential: no amplification.
	if got := c.WriteUses(2, 2)[0].Weight; got != 1 {
		t.Fatalf("local write weight %v, want 1", got)
	}
	// Zero amp defaults to 1 (no amplification).
	cfg.ReplicaWriteAmp = 0
	c = New(des.New(), cfg)
	if got := c.WriteUses(0, 3)[3].Weight; got != 1 {
		t.Fatalf("default amp weight %v, want 1", got)
	}
}

func TestNodeDiskScaleStraggler(t *testing.T) {
	cfg := STICConfig(1, 1)
	cfg.NodeDiskScale = map[int]float64{2: 0.25}
	c := New(des.New(), cfg)
	if got := c.Node(2).Disk.Capacity; got != cfg.DiskBW*0.25 {
		t.Fatalf("straggler disk %v, want quarter speed", got)
	}
	if got := c.Node(1).Disk.Capacity; got != cfg.DiskBW {
		t.Fatalf("healthy disk %v changed", got)
	}
}

func TestPenaltyCapWired(t *testing.T) {
	cfg := STICConfig(1, 1)
	cfg.DiskSeekPenalty = 0.5
	cfg.DiskPenaltyCap = 1.0
	c := New(des.New(), cfg)
	d := c.Node(0).Disk
	// At 100 concurrent flows the penalty is capped at 1.0: effective
	// throughput never drops below half of nominal.
	if got := d.Effective(100); got != cfg.DiskBW/2 {
		t.Fatalf("capped effective %v, want %v", got, cfg.DiskBW/2)
	}
}

func TestEffectiveUncappedWhenZero(t *testing.T) {
	r := &flow.Resource{Capacity: 100, SeekPenalty: 0.5}
	if got := r.Effective(3); got != 100/2.0 {
		t.Fatalf("uncapped effective(3) = %v, want 50", got)
	}
	r.PenaltyCap = 0.4
	if got := r.Effective(3); got != 100/1.4 {
		t.Fatalf("capped effective(3) = %v, want %v", got, 100/1.4)
	}
}
