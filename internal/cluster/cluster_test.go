package cluster

import (
	"testing"

	"rcmp/internal/des"
)

func TestValidate(t *testing.T) {
	good := STICConfig(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("STIC config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.MapSlots = 0 },
		func(c *Config) { c.ReduceSlots = -1 },
		func(c *Config) { c.DiskBW = 0 },
		func(c *Config) { c.NICBW = -5 },
		func(c *Config) { c.Oversubscription = 0.5 },
	}
	for i, mutate := range cases {
		cfg := STICConfig(1, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(des.New(), Config{})
}

func TestTopology(t *testing.T) {
	sim := des.New()
	c := New(sim, STICConfig(2, 2))
	if c.NumNodes() != 10 {
		t.Fatalf("NumNodes = %d, want 10", c.NumNodes())
	}
	if got := len(c.Alive()); got != 10 {
		t.Fatalf("Alive = %d, want 10", got)
	}
	wantCore := 10 * 1250.0 * MB / 4
	if c.Core.Capacity != wantCore {
		t.Fatalf("core capacity %v, want %v", c.Core.Capacity, wantCore)
	}
}

func TestFailure(t *testing.T) {
	sim := des.New()
	c := New(sim, STICConfig(1, 1))
	sim.At(15, func() { c.Fail(3) })
	sim.Run()
	if c.NumAlive() != 9 {
		t.Fatalf("NumAlive = %d after failure, want 9", c.NumAlive())
	}
	n := c.Node(3)
	if !n.Failed() || n.FailedAt() != 15 {
		t.Fatalf("node 3 failed=%v at %v, want true at 15", n.Failed(), n.FailedAt())
	}
	for _, id := range c.Alive() {
		if id == 3 {
			t.Fatal("failed node listed as alive")
		}
	}
	// Idempotent.
	c.Fail(3)
	if c.NumAlive() != 9 {
		t.Fatal("double Fail changed alive count")
	}
}

func TestTransferUsesLocal(t *testing.T) {
	c := New(des.New(), STICConfig(1, 1))
	uses := c.TransferUses(2, 2)
	if len(uses) != 1 || uses[0].R != c.Node(2).Disk || uses[0].Weight != 2 {
		t.Fatalf("local transfer uses = %+v, want single disk at weight 2", uses)
	}
}

func TestTransferUsesRemote(t *testing.T) {
	c := New(des.New(), STICConfig(1, 1))
	uses := c.TransferUses(1, 4)
	if len(uses) != 5 {
		t.Fatalf("remote transfer crosses %d resources, want 5", len(uses))
	}
	if uses[0].R != c.Node(1).Disk || uses[1].R != c.Node(1).Up ||
		uses[2].R != c.Core || uses[3].R != c.Node(4).Down || uses[4].R != c.Node(4).Disk {
		t.Fatalf("remote transfer path wrong: %+v", uses)
	}
}

func TestReadAndWriteUses(t *testing.T) {
	c := New(des.New(), STICConfig(1, 1))
	if got := c.ReadUses(5, 5); len(got) != 1 || got[0].Weight != 1 {
		t.Fatalf("local read uses = %+v", got)
	}
	if got := c.ReadUses(0, 5); len(got) != 4 {
		t.Fatalf("remote read crosses %d resources, want 4 (no dst disk)", len(got))
	}
	if got := c.WriteUses(5, 5); len(got) != 1 {
		t.Fatalf("local write uses = %+v", got)
	}
	if got := c.WriteUses(5, 0); len(got) != 4 {
		t.Fatalf("remote write crosses %d resources, want 4 (no src disk)", len(got))
	}
}

func TestDCOConfig(t *testing.T) {
	cfg := DCOConfig(60, 1, 1)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DCO config invalid: %v", err)
	}
	if cfg.Nodes != 60 {
		t.Fatalf("nodes = %d", cfg.Nodes)
	}
	if cfg.TaskStartup >= STICConfig(1, 1).TaskStartup {
		t.Fatal("DCO (JVM reuse) should have lower task startup than STIC")
	}
}
