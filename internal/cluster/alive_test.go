package cluster

import (
	"math/rand"
	"testing"

	"rcmp/internal/des"
	"rcmp/internal/failure"
)

// alive_test.go pins the incremental alive set at scale: multi-node
// failure pulses sampled from the paper's traces, applied to a 1024-node
// cluster, must leave exactly the same alive view a from-scratch rebuild
// produces — ascending IDs, consistent count, consistent pool sizing —
// after every pulse.

// rebuildAliveReference is the old O(n) from-scratch scan the incremental
// set replaced; the oracle for these tests.
func rebuildAliveReference(c *Cluster) []int {
	var alive []int
	for i := 0; i < c.NumNodes(); i++ {
		if !c.Node(i).Failed() {
			alive = append(alive, i)
		}
	}
	return alive
}

func checkAliveAgainstReference(t *testing.T, c *Cluster, where string) {
	t.Helper()
	want := rebuildAliveReference(c)
	got := c.Alive()
	if len(got) != len(want) || c.NumAlive() != len(want) {
		t.Fatalf("%s: alive count %d (NumAlive %d), reference %d", where, len(got), c.NumAlive(), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: alive[%d] = %d, reference %d (incremental set diverged or lost ascending order)",
				where, i, got[i], want[i])
		}
	}
	wantCap := float64(len(want)) * c.Cfg.NICBW
	if c.ShufSrc.Capacity != wantCap {
		t.Fatalf("%s: shuffle source pool capacity %g, want %g (alive-sized)", where, c.ShufSrc.Capacity, wantCap)
	}
}

// TestAliveIncrementalAtScale drives trace-sampled failure schedules into
// a 1024-node cluster: every pulse kills its node batch through Fail and
// the incremental set must match the from-scratch rebuild afterwards.
func TestAliveIncrementalAtScale(t *testing.T) {
	const nodes = 1024
	cfg := DCOConfig(nodes, 1, 1)
	for seed := int64(0); seed < 3; seed++ {
		sim := des.New()
		c := New(sim, cfg)
		checkAliveAgainstReference(t, c, "fresh")

		sched, err := failure.FromTrace(failure.SUGARTrace(), 40, 64, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Cap total losses the way the scenario engine does, leaving a
		// working cluster.
		sched = sched.Capped(nodes / 2)
		if sched.Empty() {
			t.Fatalf("seed %d sampled an empty schedule; pick a seed that fails nodes", seed)
		}
		rng := rand.New(rand.NewSource(seed))
		killed := 0
		for pi, p := range sched.Pulses {
			for k := 0; k < p.Nodes; k++ {
				alive := c.Alive()
				c.Fail(alive[rng.Intn(len(alive))])
				killed++
			}
			checkAliveAgainstReference(t, c, "after pulse")
			if c.NumAlive() != nodes-killed {
				t.Fatalf("pulse %d: NumAlive %d, want %d", pi, c.NumAlive(), nodes-killed)
			}
		}
		// Idempotent re-kill must not corrupt the set.
		deadID := -1
		for i := 0; i < nodes; i++ {
			if c.Node(i).Failed() {
				deadID = i
				break
			}
		}
		c.Fail(deadID)
		checkAliveAgainstReference(t, c, "after idempotent re-kill")

		// Reset restores the full cluster and pool sizing.
		sim.Reset()
		c.Reset()
		checkAliveAgainstReference(t, c, "after reset")
		if c.NumAlive() != nodes {
			t.Fatalf("reset left %d alive, want %d", c.NumAlive(), nodes)
		}
	}
}

// TestAliveMidPulseUnsortedView checks the contract boundary directly:
// kills leave the internal slice unsorted, and the first Alive() read
// restores ascending order without losing members.
func TestAliveMidPulseUnsortedView(t *testing.T) {
	sim := des.New()
	c := New(sim, DCOConfig(64, 1, 1))
	// Kill a low ID so the swap-remove moves the tail into the middle.
	c.Fail(3)
	c.Fail(10)
	checkAliveAgainstReference(t, c, "after low-ID kills")
}
